"""Shared helpers for chaos/fault-injection tests."""

from repro.core import DynaStarSystem, SystemConfig
from repro.sim import ConstantLatency
from repro.smr import KeyValueApp


def kv_app(n_keys=8):
    return KeyValueApp({f"k{i}": i for i in range(n_keys)})


def build_chaos_system(
    n_keys=8,
    n_partitions=2,
    seed=3,
    repartition=False,
    threshold=400,
    **config_kwargs,
):
    """Like :func:`tests.core.conftest.build_system`, but forwards any
    extra :class:`SystemConfig` field (loss_probability, client_timeout,
    retransmit_period, ...) so chaos tests can shape the fault model."""
    app = kv_app(n_keys)
    config = SystemConfig(
        n_partitions=n_partitions,
        seed=seed,
        latency=ConstantLatency(0.001),
        repartition_enabled=repartition,
        repartition_threshold=threshold,
        **config_kwargs,
    )
    return DynaStarSystem(app, config)


def assert_no_stuck_clients(system):
    for client in system.clients:
        assert client.done, f"{client.name} stuck (completed={client.completed})"
