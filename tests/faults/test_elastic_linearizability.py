"""Safety during elastic reconfiguration: acked commands stay
linearizable and execute exactly once while partitions split, drain, and
retire online — including with the three reconfiguration fault kinds
(``crash_mid_split``, ``crash_oracle_during_reconfig``,
``lose_cutover_msgs``) firing inside the reconfig windows."""

import pytest

from repro.core.client import ScriptedWorkload
from repro.faults import ChaosInjector, FaultSchedule
from repro.smr import Command, History, check_linearizable

from tests.core.conftest import assert_replicas_agree
from tests.faults.conftest import assert_no_stuck_clients, build_chaos_system

N_KEYS = 8


def build_elastic_system(**extra):
    """Seed 3 places five of the eight keys on p0 — enough nodes to
    split — with aggressive log-driven thresholds so the hotspot scripts
    below trigger a split (and usually a merge) within the run."""
    return build_chaos_system(
        n_keys=N_KEYS,
        n_partitions=2,
        seed=3,
        hint_period=0.1,
        client_think_time=0.05,
        client_timeout=0.3,
        client_timeout_cap=2.0,
        audit=True,
        elastic_enabled=True,
        elastic_split_factor=1.3,
        elastic_merge_factor=0.3,
        elastic_eval_interval=30,
        elastic_cooldown=50,
        max_partitions=4,
        min_partitions=1,
        idempotency_keys=True,
        **extra,
    )


def hotspot_scripts(system, n_clients=3, n_hot=24, n_cold=12):
    """Per-client scripts: a hot phase hammering the node-heavy
    partition's keys (with transfers among them, so the split bisection
    has edges), then a cold phase on the other partition's keys only —
    the load shift that triggers the merge."""
    by_partition: dict = {}
    for key, part in system.initial_assignment.items():
        by_partition.setdefault(part, []).append(key)
    hot = sorted(max(by_partition.values(), key=len))
    cold = sorted(min(by_partition.values(), key=len))
    assert len(hot) >= 4 and cold, "seed no longer yields a splittable hotspot"
    scripts = []
    for c in range(n_clients):
        cmds = []
        for i in range(n_hot):
            key = hot[(c * 3 + i) % len(hot)]
            if i % 4 == 0:
                other = hot[(c * 3 + i + 1) % len(hot)]
                if other != key:
                    cmds.append(Command(f"c{c}:{i}", "transfer", (key, other, 1)))
                    continue
            if i % 2 == 0:
                cmds.append(Command(f"c{c}:{i}", "write", (key, c * 100 + i)))
            else:
                cmds.append(Command(f"c{c}:{i}", "read", (key,)))
        for i in range(n_hot, n_hot + n_cold):
            key = cold[(c + i) % len(cold)]
            if i % 2 == 0:
                cmds.append(Command(f"c{c}:{i}", "write", (key, c * 100 + i)))
            else:
                cmds.append(Command(f"c{c}:{i}", "read", (key,)))
        scripts.append(cmds)
    return scripts


def reconfig_fault_comb(until=3.0):
    """A dense comb of the three reconfiguration fault kinds.  Each
    resolves applicability at fire time (no-op when nothing is in
    flight), so the comb bites exactly inside the reconfig windows
    wherever they land.  Crash ticks pair with recover_leader shortly
    after, bounding any outage."""
    schedule = FaultSchedule()
    t = 0.2
    i = 0
    while t < until:
        schedule.at(round(t, 4), "lose_cutover_msgs", 0.15, 0.2)
        if i % 3 == 0:
            schedule.at(round(t + 0.005, 4), "crash_oracle_during_reconfig")
            schedule.at(round(t + 0.205, 4), "recover_leader", "oracle")
        elif i % 3 == 1:
            group = f"p{(i // 3) % 2}"
            schedule.at(round(t + 0.005, 4), "crash_mid_split", group)
            schedule.at(round(t + 0.205, 4), "recover_leader", group)
        t += 0.1
        i += 1
    return schedule


def assert_variables_conserved(system):
    merged = system.all_store_variables()
    assert set(merged) == {f"k{i}" for i in range(N_KEYS)}


class TestElasticLinearizability:
    def test_split_and_merge_stay_linearizable(self):
        # No injected faults: the reconfigurations themselves are the
        # disturbance.  Every acked command must be linearizable across
        # the cutovers, and no variable may be lost or duplicated by the
        # handoffs.
        system = build_elastic_system()
        history = History()
        scripts = hotspot_scripts(system)
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in scripts
        ]
        system.run(until=120.0)

        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds), f"{client.name} lost acks"
            assert client.failed == 0
        # The run actually reconfigured.
        cutovers = [
            r for r in system.audit.records if r["kind"] == "reconfig-cutover"
        ]
        assert cutovers, "scenario never split or merged"
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)
        assert_variables_conserved(system)

    def test_reconfig_faults_stay_linearizable(self):
        # The three new fault kinds fire inside the reconfig windows:
        # oracle replicas crash mid-protocol, handoff holders crash with
        # nodes in transit, and cutover multicasts ride loss bursts.
        # Safety must hold anyway.
        system = build_elastic_system()
        injector = ChaosInjector(system, reconfig_fault_comb(until=3.5)).arm()
        history = History()
        scripts = hotspot_scripts(system)
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in scripts
        ]
        system.run(until=240.0)

        assert len(injector.applied) == len(injector.schedule)
        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds), f"{client.name} lost acks"
            assert client.failed == 0
        cutovers = [
            r for r in system.audit.records if r["kind"] == "reconfig-cutover"
        ]
        assert cutovers, "scenario never split or merged"
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)
        assert_variables_conserved(system)

    def test_retired_partition_ends_empty_and_nacks(self):
        # Drive a merge, then check the retirement contract: the retired
        # group's replicas hold no state, and the audit trail shows the
        # full decision -> cutover -> drain -> retire lifecycle.
        system = build_elastic_system()
        history = History()
        scripts = hotspot_scripts(system)
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in scripts
        ]
        system.run(until=120.0)
        assert_no_stuck_clients(system)

        retired = [
            r for r in system.audit.records if r["kind"] == "reconfig-retired"
        ]
        if not retired:
            pytest.skip("this seed produced splits but no merge")
        for record in retired:
            name = record["partition"]
            assert name not in system.partition_names
            for replica in system.servers(name):
                assert replica.retired
                assert not dict(replica.store.items()), (
                    f"retired {name} still owns state"
                )
        assert check_linearizable(history, system.app)
        assert_variables_conserved(system)


@pytest.mark.slow
class TestElasticChaosSlow:
    def test_experiment_chaos_scenario_is_safe(self):
        # The full seeded experiment scenario under its chaos comb:
        # splits and merges in both phases with all three fault kinds
        # firing.  Open-loop history is too long to linearizability-check
        # (exponential), so this asserts the cheap invariants: progress,
        # replica agreement, conservation, retired-store emptiness.
        from repro.experiments.elastic import (
            ElasticScenario,
            run_scenario,
            verify_consistency,
        )

        summary, system = run_scenario(
            ElasticScenario(duration=8.0, shift_at=4.0, chaos=True)
        )
        assert summary["stuck_clients"] == 0
        assert summary["failed"] == 0
        assert summary["cutovers"] >= 2
        assert summary["splits_decided"] >= 1
        assert summary["merges_decided"] >= 1
        assert summary["faults_applied"] > 0
        assert verify_consistency(system) == []
