"""A real workload (TPC-C) under chaos: the spec's consistency
conditions must hold on the replicated state after crashes, recoveries,
and loss bursts."""

import pytest

from repro.core import DynaStarSystem, SystemConfig
from repro.faults import ChaosInjector, FaultSchedule
from repro.sim import ConstantLatency
from repro.workloads.tpcc import (
    TPCCApp,
    TPCCConfig,
    TPCCWorkload,
    district_key,
    warehouse_key,
)

from tests.core.conftest import assert_replicas_agree
from tests.faults.conftest import assert_no_stuck_clients


class TestTPCCUnderChaos:
    def test_tpcc_consistency_across_crash_recover_and_loss_burst(self):
        config = TPCCConfig(
            n_warehouses=2, customers_per_district=8, n_items=40
        )
        app = TPCCApp(config)
        system = DynaStarSystem(
            app,
            SystemConfig(
                n_partitions=2,
                seed=3,
                latency=ConstantLatency(0.0005),
                client_timeout=0.25,
                client_timeout_cap=2.0,
            ),
        )
        schedule = (
            FaultSchedule()
            .at(0.2, "crash_replica", "p0", 0)
            .at(0.3, "crash_replica", system.oracle_group, 1)
            .at(1.5, "recover_replica", "p0", 0)
            .at(1.7, "recover_replica", system.oracle_group, 1)
            .at(2.0, "loss_burst", 1.0, 0.1)
        )
        injector = ChaosInjector(system, schedule).arm()
        workload = TPCCWorkload(config, seed=4, commands_per_client=40)
        clients = [system.add_client(workload) for _ in range(3)]
        system.run(until=240.0)

        assert_no_stuck_clients(system)
        assert len(injector.applied) == len(schedule)
        completed = sum(c.completed for c in clients)
        assert completed > 0
        assert_replicas_agree(system)
        # TPC-C consistency condition 1: warehouse YTD == sum of its
        # districts' YTDs — violated if any payment is lost or doubled.
        merged = system.all_store_variables()
        for w in range(1, config.n_warehouses + 1):
            w_ytd = merged[warehouse_key(w)]["ytd"]
            d_ytd = sum(
                merged[district_key(w, d)]["ytd"]
                for d in range(1, config.districts_per_warehouse + 1)
            )
            assert w_ytd == pytest.approx(d_ytd), (w, w_ytd, d_ytd)
