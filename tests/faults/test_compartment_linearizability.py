"""Safety of lease-served local reads under stage faults: acked reads
stay linearizable while proxy leaders crash mid-batch and lease holders
force-expire mid-read-burst, and every bounced read completes through
the ordered path."""

import random

import pytest

from repro.compartment import CompartmentConfig
from repro.core.client import ScriptedWorkload
from repro.faults import ChaosInjector, FaultSchedule
from repro.smr import Command, History, check_linearizable

from tests.core.conftest import assert_replicas_agree
from tests.faults.conftest import assert_no_stuck_clients, build_chaos_system

N_KEYS = 8


def build_compartment_system(**extra):
    return build_chaos_system(
        n_keys=N_KEYS,
        n_partitions=2,
        seed=3,
        client_timeout=0.4,
        client_timeout_cap=2.0,
        idempotency_keys=True,
        compartment=CompartmentConfig(
            enabled=True, n_proxy_leaders=2, n_learners=3
        ),
        **extra,
    )


def read_burst_scripts(n_clients=4, n_commands=48, seed=11):
    """Read-heavy scripts with interleaved writes, so forced lease
    expiries land inside bursts of in-flight local reads and the
    sequencing probes have fresh writes to cover."""
    rng = random.Random(seed)
    keys = [f"k{i}" for i in range(N_KEYS)]
    scripts = []
    for c in range(n_clients):
        cmds = []
        for i in range(n_commands):
            key = rng.choice(keys)
            if rng.random() < 0.8:
                cmds.append(Command(f"c{c}:{i}", "read", (key,)))
            else:
                cmds.append(Command(f"c{c}:{i}", "write", (key, c * 1000 + i)))
        scripts.append(cmds)
    return scripts


def stage_fault_comb(until=3.0):
    """A dense comb of the two stage fault kinds.  Both resolve their
    victim at fire time (no-op against an idle stage), so the comb is
    safe to lay down densely; proxy crashes pair with recover_leader via
    the injector's shared crash ledger."""
    schedule = FaultSchedule()
    t = 0.3
    i = 0
    while t < until:
        group = f"p{i % 2}"
        schedule.at(round(t, 4), "crash_proxy_leader", group)
        schedule.at(round(t + 0.2, 4), "recover_leader", group)
        schedule.at(round(t + 0.1, 4), "expire_lease", f"p{(i + 1) % 2}")
        t += 0.4
        i += 1
    return schedule


def run_with_faults(system, schedule):
    injector = ChaosInjector(system, schedule).arm()
    history = History()
    scripts = read_burst_scripts()
    clients = [
        system.add_client(ScriptedWorkload(cmds), history=history)
        for cmds in scripts
    ]
    system.run(until=90.0)
    return injector, history, clients, scripts


class TestCompartmentLinearizability:
    def test_lease_expiry_mid_burst_stays_linearizable(self):
        # Only forced expiries: every local read in flight when its
        # partition's lease dies must either still be covered by a
        # completed probe or bounce to the ordered path — never return
        # a stale value.
        system = build_compartment_system()
        schedule = FaultSchedule()
        for i in range(8):
            schedule.at(round(0.3 + i * 0.35, 4), "expire_lease", f"p{i % 2}")
        injector, history, clients, scripts = run_with_faults(system, schedule)

        assert len(injector.applied) == len(injector.schedule)
        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds), f"{client.name} lost acks"
            assert client.failed == 0
        counters = system.monitor.snapshot()["counters"]
        expired = sum(
            v for k, v in counters.items()
            if k.startswith("lease{") and "event=expired" in k
        )
        assert expired > 0, "no forced expiry actually bit a held lease"
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)

    def test_stage_fault_comb_stays_linearizable(self):
        # The full comb: proxy leaders crash while holding batched
        # submissions (volatile state lost, Paxos uid-dedup absorbs the
        # client retries) interleaved with forced lease expiries.
        system = build_compartment_system()
        injector, history, clients, scripts = run_with_faults(
            system, stage_fault_comb()
        )

        assert len(injector.applied) == len(injector.schedule)
        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds), f"{client.name} lost acks"
            assert client.failed == 0
        counters = system.monitor.snapshot()["counters"]
        local_ok = sum(
            v for k, v in counters.items()
            if k.startswith("reads{") and "event=local_ok" in k
        )
        assert local_ok > 0, "the comb starved the local read path entirely"
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)
        merged = system.all_store_variables()
        assert set(merged) == {f"k{i}" for i in range(N_KEYS)}

    def test_proxy_crash_loses_no_acked_commands(self):
        # Crash proxies only, aggressively: dedup at the replicas must
        # keep every command exactly-once even when a retried submission
        # rides a different proxy than its crashed original.
        system = build_compartment_system()
        schedule = FaultSchedule()
        for i in range(6):
            group = f"p{i % 2}"
            schedule.at(round(0.25 + i * 0.4, 4), "crash_proxy_leader", group)
            schedule.at(round(0.45 + i * 0.4, 4), "recover_leader", group)
        injector, history, clients, scripts = run_with_faults(system, schedule)

        assert len(injector.applied) == len(injector.schedule)
        assert_no_stuck_clients(system)
        for client, cmds in zip(clients, scripts):
            assert client.completed == len(cmds), f"{client.name} lost acks"
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)


@pytest.mark.slow
class TestCompartmentChaosSlow:
    def test_experiment_chaos_scenario_is_safe(self):
        # The full seeded experiment scenario under its stage-fault
        # comb.  The open-loop history is too long to linearizability-
        # check (exponential), so this asserts the cheap invariants:
        # progress, no stuck clients, replica agreement, and learner
        # mirrors converged to the replica state.
        from repro.experiments.compartment import (
            CompartmentScenario,
            run_scenario,
            verify_consistency,
        )

        summary, system = run_scenario(
            CompartmentScenario(duration=4.0, chaos=True)
        )
        assert summary["stuck_clients"] == 0
        assert summary["completed"] > 0
        assert summary["faults_applied"] > 0
        assert not verify_consistency(system)
