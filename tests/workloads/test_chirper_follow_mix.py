"""Tests for follow/unfollow traffic in the Chirper mix (§5.4: 'post,
follow or unfollow commands can lead to object moves; follow and
unfollow can involve at most two partitions')."""

import pytest

from repro.core import DynaStarSystem, SystemConfig
from repro.sim import ConstantLatency
from repro.workloads.social import (
    ChirperApp,
    ChirperWorkload,
    generate_social_graph,
)


class FakeClient:
    name = "c0"
    now = 0.0


class TestFollowMixGeneration:
    def test_follow_fraction_respected(self):
        g = generate_social_graph(200, seed=1)
        wl = ChirperWorkload(
            g, mix="mix", seed=2, post_fraction=0.1, follow_fraction=0.2
        )
        kinds = [wl.next_command(FakeClient()).op for _ in range(2000)]
        follows = (kinds.count("follow") + kinds.count("unfollow")) / len(kinds)
        assert 0.15 < follows < 0.25

    def test_follow_commands_touch_two_users(self):
        g = generate_social_graph(100, seed=1)
        wl = ChirperWorkload(g, mix="mix", seed=2, follow_fraction=1.0,
                             post_fraction=0.0)
        cmd = wl.next_command(FakeClient())
        assert cmd.op in ("follow", "unfollow")
        assert len(cmd.args) == 2
        assert cmd.args[0] != cmd.args[1]

    def test_workload_graph_view_tracks_follows(self):
        g = generate_social_graph(100, seed=1)
        before = g.num_edges
        wl = ChirperWorkload(g, mix="mix", seed=3, follow_fraction=1.0,
                             post_fraction=0.0)
        for _ in range(50):
            wl.next_command(FakeClient())
        assert g.num_edges != before  # view updated optimistically

    def test_fraction_overflow_rejected(self):
        g = generate_social_graph(10, seed=1)
        with pytest.raises(ValueError):
            ChirperWorkload(g, post_fraction=0.7, follow_fraction=0.6)

    def test_timeline_mix_ignores_follow_fraction(self):
        g = generate_social_graph(50, seed=1)
        wl = ChirperWorkload(g, mix="timeline", seed=2, follow_fraction=0.5)
        assert all(
            wl.next_command(FakeClient()).op == "timeline" for _ in range(100)
        )


class TestFollowMixEndToEnd:
    def test_mix_with_follows_runs_clean(self):
        g = generate_social_graph(150, avg_follows=6, seed=5)
        app = ChirperApp(g)
        system = DynaStarSystem(
            app,
            SystemConfig(
                n_partitions=3,
                seed=2,
                latency=ConstantLatency(0.0005),
                repartition_enabled=True,
                repartition_threshold=1500,
            ),
        )
        wl = ChirperWorkload(
            g, mix="mix", seed=3, post_fraction=0.1, follow_fraction=0.1,
            commands_per_client=120,
        )
        clients = [system.add_client(wl) for _ in range(4)]
        system.run(until=120.0)
        assert sum(c.completed for c in clients) == 480
        assert sum(c.failed for c in clients) == 0
        assert wl.stats["follow"] > 10

    def test_follow_visible_in_state(self):
        from repro.core.client import ScriptedWorkload
        from repro.smr import Command
        from repro.workloads.social import user_var

        g = generate_social_graph(20, avg_follows=2, seed=7)
        app = ChirperApp(g)
        system = DynaStarSystem(
            app,
            SystemConfig(
                n_partitions=2, seed=2, latency=ConstantLatency(0.0005)
            ),
        )
        # pick two users not already following each other
        users = sorted(g.users())
        a = users[0]
        b = next(u for u in users[1:] if u not in g.following[a])
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "follow", (a, b))])
        )
        system.run(until=10.0)
        assert client.completed == 1
        merged = system.all_store_variables()
        assert b in merged[user_var(a)]["following"]
        assert a in merged[user_var(b)]["followers"]
