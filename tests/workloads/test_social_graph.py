"""Tests for the synthetic social-graph generator (Higgs substitute)."""

import pytest

from repro.workloads.social import SocialGraph, generate_social_graph
from repro.workloads.social.generator import load_snap_edge_list


class TestSocialGraph:
    def test_add_follow_symmetry(self):
        g = SocialGraph()
        g.add_follow(1, 2)
        assert 2 in g.following[1]
        assert 1 in g.followers[2]

    def test_self_follow_ignored(self):
        g = SocialGraph()
        g.add_follow(1, 1)
        assert g.num_edges == 0

    def test_remove_follow(self):
        g = SocialGraph()
        g.add_follow(1, 2)
        g.remove_follow(1, 2)
        assert g.num_edges == 0
        assert 1 not in g.followers[2]

    def test_users_by_popularity(self):
        g = SocialGraph()
        for follower in (1, 2, 3):
            g.add_follow(follower, 9)
        g.add_follow(1, 5)
        ranked = g.users_by_popularity()
        assert ranked[0] == 9


class TestGenerator:
    def test_generates_requested_users(self):
        g = generate_social_graph(500, seed=1)
        assert g.num_users == 500

    def test_power_law_skew(self):
        """Top 1% of users should hold a grossly disproportionate share
        of followers (the celebrity structure the experiments rely on)."""
        g = generate_social_graph(2000, avg_follows=10, seed=2)
        degrees = sorted(
            (len(f) for f in g.followers.values()), reverse=True
        )
        top = sum(degrees[:20])
        total = sum(degrees)
        assert top > total * 0.10

    def test_mean_degree_tracks_parameter(self):
        g = generate_social_graph(2000, avg_follows=10, reciprocity=0.0, seed=3)
        mean = g.num_edges / g.num_users
        assert 5 < mean < 20

    def test_reciprocity_increases_edges(self):
        g0 = generate_social_graph(500, avg_follows=8, reciprocity=0.0, seed=4)
        g1 = generate_social_graph(500, avg_follows=8, reciprocity=0.5, seed=4)
        assert g1.num_edges > g0.num_edges

    def test_deterministic(self):
        a = generate_social_graph(300, seed=7)
        b = generate_social_graph(300, seed=7)
        assert a.following == b.following

    def test_different_seeds_differ(self):
        a = generate_social_graph(300, seed=7)
        b = generate_social_graph(300, seed=8)
        assert a.following != b.following

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_social_graph(0)

    def test_no_self_edges(self):
        g = generate_social_graph(400, seed=9)
        for user, following in g.following.items():
            assert user not in following


class TestSnapLoader:
    def test_load_edge_list(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n1 2\n2 3\n\n1 3\n")
        g = load_snap_edge_list(str(path))
        assert g.num_edges == 3
        assert 2 in g.following[1]

    def test_max_users_filter(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 2\n100 2\n")
        g = load_snap_edge_list(str(path), max_users=50)
        assert g.num_edges == 1
