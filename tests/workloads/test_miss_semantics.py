"""Missing-row semantics of the Chirper and TPC-C execute paths.

Under relocation a command can execute against a store that is missing
rows it expected (borrow raced a delete, a remote district failed to
ship a row).  Every transaction must then either return a deterministic
miss value or raise *before its first mutation* — a half-applied
transaction on one replica is a divergence bug, an unhandled exception
is a crash bug.
"""

import pytest

from repro.smr import Command
from repro.smr.statemachine import VariableStore
from repro.workloads.social.chirper import ChirperApp, user_var
from repro.workloads.tpcc import (
    TPCCApp,
    TPCCConfig,
    customer_key,
    district_key,
    order_key,
    stock_key,
    warehouse_key,
)


def preload(app):
    store = VariableStore()
    for var, value in app.initial_variables().items():
        store.put(var, value)
    return store


# ---------------------------------------------------------------------------
# Chirper
# ---------------------------------------------------------------------------


@pytest.fixture
def chirper():
    app = ChirperApp()
    store = VariableStore()
    for u in (1, 2, 3):
        store.put(user_var(u), app.initial_value_of(user_var(u)))
    return app, store


class TestChirperMisses:
    def test_timeline_of_deleted_user_is_none(self, chirper):
        app, store = chirper
        app.execute(Command("u1", "delete", (2,)), store)
        assert app.execute(Command("u2", "timeline", (2,)), store) is None

    def test_post_by_deleted_author_is_clean_nok(self, chirper):
        app, store = chirper
        store.discard(user_var(1))
        before = store.get(user_var(2))["timeline"][:]
        with pytest.raises(KeyError):
            app.execute(Command("u1", "post", (1, "hi", (2, 3))), store)
        # no follower timeline was touched
        assert store.get(user_var(2))["timeline"] == before

    def test_post_skips_deleted_followers(self, chirper):
        app, store = chirper
        store.discard(user_var(3))
        delivered = app.execute(Command("u1", "post", (1, "hi", (2, 3))), store)
        assert delivered == 1
        assert store.get(user_var(2))["timeline"] == [(1, "hi")]

    def test_follow_with_deleted_followee_mutates_neither(self, chirper):
        app, store = chirper
        store.discard(user_var(2))
        with pytest.raises(KeyError):
            app.execute(Command("u1", "follow", (1, 2)), store)
        assert store.get(user_var(1))["following"] == set()

    def test_follow_with_deleted_follower_mutates_neither(self, chirper):
        app, store = chirper
        store.discard(user_var(1))
        with pytest.raises(KeyError):
            app.execute(Command("u1", "follow", (1, 2)), store)
        assert store.get(user_var(2))["followers"] == set()


# ---------------------------------------------------------------------------
# TPC-C
# ---------------------------------------------------------------------------


@pytest.fixture
def tpcc():
    config = TPCCConfig(n_warehouses=1)
    app = TPCCApp(config)
    return app, preload(app), config


def new_order_cmd(uid="n1", lines=((1, 1, 5),)):
    return Command(uid, "new_order", (1, 1, 1, tuple(lines)))


class TestTPCCMisses:
    def test_order_status_missing_customer_is_none(self, tpcc):
        app, store, _ = tpcc
        store.discard(customer_key(1, 1, 1))
        result = app.execute(Command("u1", "order_status", (1, 1, 1)), store)
        assert result is None

    def test_stock_level_missing_district_is_none(self, tpcc):
        app, store, _ = tpcc
        store.discard(district_key(1, 1))
        result = app.execute(Command("u1", "stock_level", (1, 1, 15)), store)
        assert result is None

    def test_payment_missing_customer_mutates_nothing(self, tpcc):
        app, store, _ = tpcc
        store.discard(customer_key(1, 1, 1))
        ytd = store.get(warehouse_key(1))["ytd"]
        with pytest.raises(KeyError):
            app.execute(Command("u1", "payment", (1, 1, 1, 1, 1, 10.0)), store)
        assert store.get(warehouse_key(1))["ytd"] == ytd
        assert store.get(district_key(1, 1))["ytd"] == 0.0

    def test_new_order_missing_stock_mutates_nothing(self, tpcc):
        app, store, _ = tpcc
        store.discard(stock_key(1, 1))
        next_o_id = store.get(district_key(1, 1))["next_o_id"]
        with pytest.raises(KeyError):
            app.execute(new_order_cmd(), store)
        district = store.get(district_key(1, 1))
        assert district["next_o_id"] == next_o_id
        assert district["undelivered"] == []

    def test_new_order_invalid_item_still_aborts_cleanly(self, tpcc):
        app, store, config = tpcc
        bad = config.n_items + 1
        with pytest.raises(ValueError, match="TPCC_ABORT_INVALID_ITEM"):
            app.execute(new_order_cmd(lines=((bad, 1, 5),)), store)
        assert store.get(district_key(1, 1))["undelivered"] == []

    def test_delivery_missing_order_row_leaves_district_intact(self, tpcc):
        app, store, _ = tpcc
        app.execute(new_order_cmd(), store)
        o_id = store.get(district_key(1, 1))["undelivered"][0]
        store.discard(order_key(1, 1, o_id))
        result = app.execute(Command("u2", "delivery", (1, 7)), store)
        # the order could not be validated: nothing was delivered and the
        # district queue still holds it for a retry
        assert (1, o_id) not in result["delivered"]
        assert o_id in store.get(district_key(1, 1))["undelivered"]

    def test_delivery_missing_customer_leaves_district_intact(self, tpcc):
        app, store, _ = tpcc
        app.execute(new_order_cmd(), store)
        o_id = store.get(district_key(1, 1))["undelivered"][0]
        store.discard(customer_key(1, 1, 1))
        result = app.execute(Command("u2", "delivery", (1, 7)), store)
        assert result["delivered"] == []
        assert o_id in store.get(district_key(1, 1))["undelivered"]

    def test_delivery_happy_path_still_delivers(self, tpcc):
        app, store, _ = tpcc
        app.execute(new_order_cmd(), store)
        result = app.execute(Command("u2", "delivery", (1, 7)), store)
        assert result["delivered"] == [(1, 1)]
        assert store.get(district_key(1, 1))["undelivered"] == []
