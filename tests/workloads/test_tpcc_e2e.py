"""TPC-C end-to-end on DynaStar: spec consistency conditions must hold on
the distributed, replicated state — including across repartitioning and
multi-partition transactions."""

import pytest

from repro.core import DynaStarSystem, SystemConfig
from repro.sim import ConstantLatency
from repro.workloads.tpcc import (
    TPCCApp,
    TPCCConfig,
    TPCCWorkload,
    district_key,
    order_key,
    order_line_key,
    warehouse_key,
)


def run_tpcc(
    n_partitions=2,
    placement="random",
    repartition=False,
    commands=400,
    clients=6,
    seed=3,
    until=120.0,
):
    config = TPCCConfig(
        n_warehouses=n_partitions, customers_per_district=8, n_items=40
    )
    app = TPCCApp(config)
    system = DynaStarSystem(
        app,
        SystemConfig(
            n_partitions=n_partitions,
            seed=seed,
            latency=ConstantLatency(0.0005),
            placement=placement,
            repartition_enabled=repartition,
            repartition_threshold=1200,
        ),
    )
    per_client = commands // clients
    workload = TPCCWorkload(config, seed=seed + 1, commands_per_client=per_client)
    client_list = [system.add_client(workload) for _ in range(clients)]
    system.run(until=until)
    return system, config, client_list, per_client * clients


def check_consistency(system, config):
    merged = system.all_store_variables()
    for w in range(1, config.n_warehouses + 1):
        w_ytd = merged[warehouse_key(w)]["ytd"]
        d_ytd = sum(
            merged[district_key(w, d)]["ytd"]
            for d in range(1, config.districts_per_warehouse + 1)
        )
        assert w_ytd == pytest.approx(d_ytd), (w, w_ytd, d_ytd)
        for d in range(1, config.districts_per_warehouse + 1):
            district = merged[district_key(w, d)]
            next_o = district["next_o_id"]
            for o in range(1, next_o):
                assert order_key(w, d, o) in merged, (w, d, o)
                order = merged[order_key(w, d, o)]
                for n in range(1, order["ol_cnt"] + 1):
                    assert order_line_key(w, d, o, n) in merged
            no_rows = {
                key[3]
                for key in merged
                if key[0] == "NO" and key[1] == w and key[2] == d
            }
            assert set(district["undelivered"]) == no_rows


class TestTPCCEndToEnd:
    def test_consistency_static_random_placement(self):
        system, config, clients, issued = run_tpcc(repartition=False)
        completed = sum(c.completed for c in clients)
        failed = sum(c.failed for c in clients)
        assert completed + failed == issued
        assert failed < issued * 0.05  # only the ~1% invalid-item aborts
        check_consistency(system, config)

    def test_consistency_across_repartitioning(self):
        system, config, clients, issued = run_tpcc(
            repartition=True, commands=600, until=200.0
        )
        completed = sum(c.completed for c in clients)
        failed = sum(c.failed for c in clients)
        assert completed + failed == issued
        assert system.oracle_replicas()[0].version >= 1
        check_consistency(system, config)

    def test_replicas_agree_after_run(self):
        system, config, _, _issued = run_tpcc(repartition=True, commands=300)
        for partition in system.partition_names:
            replicas = system.servers(partition)
            state0 = dict(replicas[0].store.items())
            for replica in replicas[1:]:
                assert dict(replica.store.items()) == state0

    def test_invalid_item_aborts_reported_as_nok(self):
        # Force high abort rate to exercise the NOK path end-to-end.
        config = TPCCConfig(
            n_warehouses=2,
            customers_per_district=8,
            n_items=40,
            invalid_item_prob=0.5,
        )
        app = TPCCApp(config)
        system = DynaStarSystem(
            app,
            SystemConfig(
                n_partitions=2,
                seed=3,
                latency=ConstantLatency(0.0005),
                placement="hash",
            ),
        )
        workload = TPCCWorkload(config, seed=4, commands_per_client=60)
        client = system.add_client(workload)
        system.run(until=60.0)
        assert client.failed > 5
        assert client.completed + client.failed == 60
        check_consistency(system, config)

    def test_delivery_credits_survive_borrowing(self):
        """Deliveries executed away from home (borrowed districts) must
        write back order/customer updates correctly."""
        system, config, clients, _issued = run_tpcc(
            n_partitions=3, placement="random", commands=500, until=150.0
        )
        merged = system.all_store_variables()
        delivered_orders = [
            key
            for key, row in merged.items()
            if key[0] == "O" and row["carrier_id"] is not None
        ]
        if not delivered_orders:
            pytest.skip("workload produced no completed deliveries")
        for key in delivered_orders:
            w, d, o = key[1], key[2], key[3]
            order = merged[key]
            for n in range(1, order["ol_cnt"] + 1):
                assert merged[order_line_key(w, d, o, n)]["delivery_d"] is not None
