"""Tests for the Chirper state machine and workload, standalone and
end-to-end on DynaStar."""

import pytest

from repro.core import DynaStarSystem, SystemConfig
from repro.sim import ConstantLatency
from repro.smr import Command
from repro.smr.statemachine import VariableStore
from repro.workloads.social import (
    CelebrityEvent,
    ChirperApp,
    ChirperWorkload,
    SocialGraph,
    generate_social_graph,
    user_var,
)


def small_graph():
    g = SocialGraph()
    g.add_follow(1, 0)  # 1 and 2 follow 0
    g.add_follow(2, 0)
    g.add_follow(0, 1)  # 0 follows 1
    g.add_user(3)
    return g


def fresh_store(app):
    store = VariableStore()
    for var, value in app.initial_variables().items():
        store.insert_copy(var, value)
    return store


class TestChirperSemantics:
    def setup_method(self):
        self.app = ChirperApp(small_graph())
        self.store = fresh_store(self.app)

    def test_initial_profiles_reflect_graph(self):
        profile = self.store.get(user_var(0))
        assert profile["followers"] == {1, 2}
        assert profile["following"] == {1}

    def test_post_writes_followers_timelines(self):
        cmd = Command("c:0", "post", (0, "hello", (1, 2)))
        delivered = self.app.execute(cmd, self.store)
        assert delivered == 2
        assert self.store.get(user_var(1))["timeline"] == [(0, "hello")]
        assert self.store.get(user_var(2))["timeline"] == [(0, "hello")]

    def test_post_does_not_write_own_timeline(self):
        self.app.execute(Command("c:0", "post", (0, "hi", (1,))), self.store)
        assert self.store.get(user_var(0))["timeline"] == []

    def test_timeline_newest_first(self):
        self.app.execute(Command("c:0", "post", (0, "first", (1,))), self.store)
        self.app.execute(Command("c:1", "post", (0, "second", (1,))), self.store)
        result = self.app.execute(Command("c:2", "timeline", (1,)), self.store)
        assert result == [(0, "second"), (0, "first")]

    def test_timeline_bounded(self):
        from repro.workloads.social.chirper import TIMELINE_LIMIT

        for i in range(TIMELINE_LIMIT + 10):
            self.app.execute(
                Command(f"c:{i}", "post", (0, f"m{i}", (1,))), self.store
            )
        assert len(self.store.get(user_var(1))["timeline"]) == TIMELINE_LIMIT

    def test_140_char_limit(self):
        with pytest.raises(ValueError):
            self.app.execute(
                Command("c:0", "post", (0, "x" * 141, (1,))), self.store
            )

    def test_follow_updates_both_profiles(self):
        self.app.execute(Command("c:0", "follow", (3, 0)), self.store)
        assert 0 in self.store.get(user_var(3))["following"]
        assert 3 in self.store.get(user_var(0))["followers"]

    def test_unfollow(self):
        self.app.execute(Command("c:0", "unfollow", (1, 0)), self.store)
        assert 0 not in self.store.get(user_var(1))["following"]
        assert 1 not in self.store.get(user_var(0))["followers"]

    def test_post_skips_deleted_followers(self):
        self.store.discard(user_var(2))
        delivered = self.app.execute(
            Command("c:0", "post", (0, "hey", (1, 2))), self.store
        )
        assert delivered == 1

    def test_vars_of_post_includes_followers(self):
        cmd = Command("c:0", "post", (0, "hey", (1, 2)))
        assert self.app.variables_of(cmd) == {
            user_var(0),
            user_var(1),
            user_var(2),
        }

    def test_vars_of_timeline_is_single(self):
        assert self.app.variables_of(Command("c:0", "timeline", (5,))) == {
            user_var(5)
        }


class TestChirperWorkload:
    def test_rank_by_random_decorrelates_activity_from_popularity(self):
        g = generate_social_graph(500, avg_follows=10, seed=3)
        wl = ChirperWorkload(g, mix="timeline", seed=4, rank_by="random")
        top = set(g.users_by_popularity()[:50])

        class FakeClient:
            name = "c0"
            now = 0.0

        hits = sum(
            1
            for _ in range(1000)
            if wl.next_command(FakeClient()).args[0] in top
        )
        # decorrelated: popular users get roughly their share, not 30%+
        assert hits < 300

    def test_invalid_rank_by(self):
        g = generate_social_graph(10, seed=1)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            ChirperWorkload(g, rank_by="bogus")

    def test_mix_fractions(self):
        g = generate_social_graph(200, seed=1)
        wl = ChirperWorkload(g, mix="mix", seed=2, post_fraction=0.15)

        class FakeClient:
            name = "c0"
            now = 0.0

        kinds = [wl.next_command(FakeClient()).op for _ in range(2000)]
        posts = kinds.count("post") / len(kinds)
        assert 0.10 < posts < 0.20
        assert kinds.count("timeline") + kinds.count("post") == len(kinds)

    def test_timeline_only_mix(self):
        g = generate_social_graph(100, seed=1)
        wl = ChirperWorkload(g, mix="timeline", seed=2)

        class FakeClient:
            name = "c0"
            now = 0.0

        assert all(
            wl.next_command(FakeClient()).op == "timeline" for _ in range(200)
        )

    def test_zipf_prefers_popular_users_when_ranked_by_popularity(self):
        g = generate_social_graph(500, avg_follows=10, seed=3)
        wl = ChirperWorkload(g, mix="timeline", seed=4, rank_by="popularity")
        top = set(g.users_by_popularity()[:50])

        class FakeClient:
            name = "c0"
            now = 0.0

        hits = sum(
            1
            for _ in range(1000)
            if wl.next_command(FakeClient()).args[0] in top
        )
        assert hits > 300  # 10% of users get >30% of accesses

    def test_commands_per_client_limit(self):
        g = generate_social_graph(50, seed=1)
        wl = ChirperWorkload(g, seed=1, commands_per_client=5)

        class FakeClient:
            name = "c0"
            now = 0.0

        cmds = [wl.next_command(FakeClient()) for _ in range(7)]
        assert sum(c is not None for c in cmds) == 5

    def test_celebrity_event_creates_then_follows(self):
        g = generate_social_graph(100, seed=1)
        event = CelebrityEvent(time=10.0, celebrity=9999, follow_prob=1.0)
        wl = ChirperWorkload(g, seed=2, event=event)

        class FakeClient:
            name = "c0"
            now = 20.0

        first = wl.next_command(FakeClient())
        assert first.op == "create" and first.args == (9999,)
        second = wl.next_command(FakeClient())
        assert second.op == "follow"
        assert second.args[1] == 9999


class TestChirperEndToEnd:
    def test_mixed_workload_runs_clean(self):
        g = generate_social_graph(150, avg_follows=6, seed=5)
        app = ChirperApp(g)
        system = DynaStarSystem(
            app,
            SystemConfig(
                n_partitions=4,
                seed=2,
                latency=ConstantLatency(0.0005),
                repartition_enabled=True,
                repartition_threshold=1500,
            ),
        )
        wl = ChirperWorkload(g, mix="mix", seed=3, commands_per_client=100)
        for _ in range(6):
            system.add_client(wl)
        system.run(until=120.0)
        assert system.total_completed() == 600
        assert system.total_failed() == 0

    def test_post_visible_in_follower_timeline_e2e(self):
        g = small_graph()
        app = ChirperApp(g)
        system = DynaStarSystem(
            app,
            SystemConfig(
                n_partitions=2, seed=1, latency=ConstantLatency(0.0005)
            ),
        )
        from repro.core.client import ScriptedWorkload

        client = system.add_client(
            ScriptedWorkload(
                [
                    Command("c:0", "post", (0, "hello world", (1, 2))),
                    Command("c:1", "timeline", (1,)),
                    Command("c:2", "timeline", (3,)),
                ]
            )
        )
        system.run(until=20.0)
        assert client.completed == 3
        assert client.results["c:1"][1] == [(0, "hello world")]
        assert client.results["c:2"][1] == []
