"""Tests for the TPC-C implementation: schema, transactions, consistency
conditions from the spec, and the workload generator."""

import random

import pytest

from repro.smr import Command
from repro.smr.statemachine import VariableStore
from repro.workloads.tpcc import (
    TPCCApp,
    TPCCConfig,
    TPCCWorkload,
    build_initial_variables,
    customer_key,
    district_key,
    district_node,
    item_price,
    new_order_key,
    order_key,
    order_line_key,
    stock_key,
    warehouse_key,
    warehouse_node,
)
from repro.workloads.tpcc.loader import count_rows


def small_config():
    return TPCCConfig(
        n_warehouses=2,
        districts_per_warehouse=3,
        customers_per_district=5,
        n_items=20,
    )


def fresh(app):
    store = VariableStore()
    for var, value in app.initial_variables().items():
        store.insert_copy(var, value)
    return store


def new_order_cmd(uid, w=1, d=1, c=1, lines=((1, 1, 5), (2, 1, 3))):
    return Command(uid, "new_order", (w, d, c, tuple(lines)))


class TestLoader:
    def test_row_count_formula(self):
        cfg = small_config()
        assert len(build_initial_variables(cfg)) == count_rows(cfg)

    def test_all_tables_present(self):
        cfg = small_config()
        variables = build_initial_variables(cfg)
        assert warehouse_key(1) in variables
        assert district_key(2, 3) in variables
        assert customer_key(1, 2, 5) in variables
        assert stock_key(2, 20) in variables

    def test_graph_nodes_are_districts_and_warehouses(self):
        app = TPCCApp(small_config())
        assert app.graph_node_of(customer_key(1, 2, 3)) == district_node(1, 2)
        assert app.graph_node_of(stock_key(1, 7)) == warehouse_node(1)
        assert app.graph_node_of(order_key(1, 2, 9)) == district_node(1, 2)
        assert app.graph_node_of(warehouse_key(1)) == warehouse_node(1)


class TestNewOrder:
    def setup_method(self):
        self.app = TPCCApp(small_config())
        self.store = fresh(self.app)

    def test_creates_order_rows(self):
        result = self.app.execute(new_order_cmd("c:0"), self.store)
        o_id = result["o_id"]
        assert o_id == 1
        assert order_key(1, 1, o_id) in self.store
        assert new_order_key(1, 1, o_id) in self.store
        assert order_line_key(1, 1, o_id, 1) in self.store
        assert order_line_key(1, 1, o_id, 2) in self.store

    def test_increments_next_o_id(self):
        self.app.execute(new_order_cmd("c:0"), self.store)
        self.app.execute(new_order_cmd("c:1"), self.store)
        assert self.store.get(district_key(1, 1))["next_o_id"] == 3

    def test_decrements_stock(self):
        before = self.store.get(stock_key(1, 1))["quantity"]
        self.app.execute(new_order_cmd("c:0", lines=((1, 1, 5),)), self.store)
        assert self.store.get(stock_key(1, 1))["quantity"] == before - 5

    def test_stock_restock_rule(self):
        stock = self.store.get(stock_key(1, 1))
        stock["quantity"] = 12
        self.store.put(stock_key(1, 1), stock)
        self.app.execute(new_order_cmd("c:0", lines=((1, 1, 5),)), self.store)
        # 12 < 5+10 -> restock: 12 - 5 + 91
        assert self.store.get(stock_key(1, 1))["quantity"] == 98

    def test_remote_line_counts(self):
        self.app.execute(new_order_cmd("c:0", lines=((1, 2, 5),)), self.store)
        assert self.store.get(stock_key(2, 1))["remote_cnt"] == 1
        assert not self.store.get(order_key(1, 1, 1))["all_local"]

    def test_total_includes_taxes_and_discount(self):
        result = self.app.execute(
            new_order_cmd("c:0", lines=((1, 1, 2),)), self.store
        )
        warehouse = self.store.get(warehouse_key(1))
        district = self.store.get(district_key(1, 1))
        customer = self.store.get(customer_key(1, 1, 1))
        expected = (
            2
            * item_price(1)
            * (1 - customer["discount"])
            * (1 + warehouse["tax"] + district["tax"])
        )
        assert result["total"] == pytest.approx(round(expected, 2))

    def test_invalid_item_aborts_without_writes(self):
        cfg = self.app.config
        bad = new_order_cmd("c:0", lines=((1, 1, 2), (cfg.n_items + 1, 1, 1)))
        before_next = self.store.get(district_key(1, 1))["next_o_id"]
        before_qty = self.store.get(stock_key(1, 1))["quantity"]
        with pytest.raises(ValueError):
            self.app.execute(bad, self.store)
        assert self.store.get(district_key(1, 1))["next_o_id"] == before_next
        assert self.store.get(stock_key(1, 1))["quantity"] == before_qty

    def test_updates_undelivered_fifo(self):
        self.app.execute(new_order_cmd("c:0"), self.store)
        self.app.execute(new_order_cmd("c:1"), self.store)
        assert self.store.get(district_key(1, 1))["undelivered"] == [1, 2]

    def test_variables_of_includes_stock_of_supply_warehouse(self):
        cmd = new_order_cmd("c:0", lines=((3, 2, 1),))
        vars_ = self.app.variables_of(cmd)
        assert stock_key(2, 3) in vars_
        nodes = self.app.nodes_of(cmd)
        assert warehouse_node(2) in nodes
        assert district_node(1, 1) in nodes


class TestPayment:
    def setup_method(self):
        self.app = TPCCApp(small_config())
        self.store = fresh(self.app)

    def test_updates_ytd_chain(self):
        cmd = Command("c:0", "payment", (1, 1, 1, 1, 2, 100.0))
        self.app.execute(cmd, self.store)
        assert self.store.get(warehouse_key(1))["ytd"] == 100.0
        assert self.store.get(district_key(1, 1))["ytd"] == 100.0
        customer = self.store.get(customer_key(1, 1, 2))
        assert customer["balance"] == -110.0
        assert customer["payment_cnt"] == 2

    def test_creates_history_row(self):
        self.app.execute(
            Command("c:0", "payment", (1, 1, 1, 1, 2, 50.0)), self.store
        )
        from repro.workloads.tpcc import history_key

        assert history_key(1, 1, 2, 2) in self.store

    def test_remote_customer_payment(self):
        cmd = Command("c:0", "payment", (1, 1, 2, 3, 4, 10.0))
        self.app.execute(cmd, self.store)
        assert self.store.get(warehouse_key(1))["ytd"] == 10.0
        assert self.store.get(customer_key(2, 3, 4))["ytd_payment"] == 20.0
        nodes = self.app.nodes_of(cmd)
        assert district_node(2, 3) in nodes and warehouse_node(1) in nodes


class TestOrderStatusDeliveryStockLevel:
    def setup_method(self):
        self.app = TPCCApp(small_config())
        self.store = fresh(self.app)
        self.app.execute(new_order_cmd("c:0", c=1), self.store)

    def test_order_status_returns_last_order(self):
        result = self.app.execute(
            Command("c:1", "order_status", (1, 1, 1)), self.store
        )
        assert result["order"]["o_id"] == 1
        assert len(result["order"]["lines"]) == 2

    def test_order_status_no_orders(self):
        result = self.app.execute(
            Command("c:1", "order_status", (1, 1, 5)), self.store
        )
        assert result["order"] is None

    def test_delivery_processes_oldest_order(self):
        result = self.app.execute(
            Command("c:1", "delivery", (1, 7)), self.store
        )
        assert (1, 1) in result["delivered"]
        assert new_order_key(1, 1, 1) not in self.store
        assert self.store.get(order_key(1, 1, 1))["carrier_id"] == 7
        customer = self.store.get(customer_key(1, 1, 1))
        assert customer["delivery_cnt"] == 1
        assert customer["balance"] > -10.0  # credited with order total

    def test_delivery_empty_districts_noop(self):
        self.app.execute(Command("c:1", "delivery", (1, 7)), self.store)
        result = self.app.execute(Command("c:2", "delivery", (1, 8)), self.store)
        assert result["delivered"] == []

    def test_stock_level_counts_low_items(self):
        # push stock of item 1 below the threshold
        stock = self.store.get(stock_key(1, 1))
        stock["quantity"] = 3
        self.store.put(stock_key(1, 1), stock)
        result = self.app.execute(
            Command("c:1", "stock_level", (1, 1, 10)), self.store
        )
        assert result["low_stock"] == 1

    def test_read_only_transactions_leave_state_unchanged(self):
        import copy

        snapshot = {k: copy.deepcopy(v) for k, v in self.store.items()}
        self.app.execute(Command("c:1", "order_status", (1, 1, 1)), self.store)
        self.app.execute(Command("c:2", "stock_level", (1, 1, 10)), self.store)
        assert {k: v for k, v in self.store.items()} == snapshot


class TestConsistencyConditions:
    """The spec's consistency conditions hold after any transaction mix."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_invariants_after_random_mix(self, seed):
        cfg = small_config()
        app = TPCCApp(cfg)
        store = fresh(app)
        wl = TPCCWorkload(cfg, seed=seed)

        class FakeClient:
            name = "c0"
            now = 0.0

        for _ in range(300):
            cmd = wl.next_command(FakeClient())
            try:
                app.execute(cmd, store)
            except ValueError:
                pass  # 1% aborts

        for w in range(1, cfg.n_warehouses + 1):
            # C1: W_YTD == sum of its districts' D_YTD
            w_ytd = store.get(warehouse_key(w))["ytd"]
            d_ytd = sum(
                store.get(district_key(w, d))["ytd"]
                for d in range(1, cfg.districts_per_warehouse + 1)
            )
            assert w_ytd == pytest.approx(d_ytd)
            for d in range(1, cfg.districts_per_warehouse + 1):
                district = store.get(district_key(w, d))
                next_o = district["next_o_id"]
                # C2: every order id below next_o_id exists, none above
                for o in range(1, next_o):
                    assert order_key(w, d, o) in store
                assert order_key(w, d, next_o) not in store
                # C3: undelivered ids are exactly the NEW-ORDER rows
                no_rows = {
                    key[3]
                    for key, _ in store.items()
                    if key[0] == "NO" and key[1] == w and key[2] == d
                }
                assert set(district["undelivered"]) == no_rows
                # C4: order_line rows match each order's ol_cnt
                for o in range(1, next_o):
                    order = store.get(order_key(w, d, o))
                    for n in range(1, order["ol_cnt"] + 1):
                        assert order_line_key(w, d, o, n) in store


class TestWorkloadGenerator:
    def test_mix_close_to_spec(self):
        cfg = small_config()
        wl = TPCCWorkload(cfg, seed=1)

        class FakeClient:
            name = "c0"
            now = 0.0

        for _ in range(5000):
            wl.next_command(FakeClient())
        total = sum(wl.stats.values())
        assert wl.stats["new_order"] / total == pytest.approx(0.45, abs=0.03)
        assert wl.stats["payment"] / total == pytest.approx(0.43, abs=0.03)
        assert wl.stats["delivery"] / total == pytest.approx(0.04, abs=0.015)

    def test_clients_bound_to_warehouses_round_robin(self):
        cfg = small_config()
        wl = TPCCWorkload(cfg, seed=1)

        class C:
            def __init__(self, name):
                self.name = name
                self.now = 0.0

        homes = set()
        for i in range(cfg.n_warehouses):
            cmd = wl.next_command(C(f"c{i}"))
            homes.add(cmd.args[0])
        assert homes == set(range(1, cfg.n_warehouses + 1))

    def test_remote_lines_rare(self):
        cfg = TPCCConfig(n_warehouses=4, n_items=50)
        wl = TPCCWorkload(cfg, seed=2)

        class FakeClient:
            name = "c0"
            now = 0.0

        remote = local = 0
        for _ in range(3000):
            cmd = wl.next_command(FakeClient())
            if cmd.op != "new_order":
                continue
            w = cmd.args[0]
            for _i, sw, _q in cmd.args[3]:
                if sw == w:
                    local += 1
                else:
                    remote += 1
        frac = remote / (remote + local)
        assert 0.002 < frac < 0.03  # around the spec's 1%

    def test_single_warehouse_never_remote(self):
        cfg = TPCCConfig(n_warehouses=1, n_items=50)
        wl = TPCCWorkload(cfg, seed=3)

        class FakeClient:
            name = "c0"
            now = 0.0

        for _ in range(500):
            cmd = wl.next_command(FakeClient())
            if cmd.op == "new_order":
                assert all(sw == 1 for _i, sw, _q in cmd.args[3])

    def test_commands_per_client_limit(self):
        cfg = small_config()
        wl = TPCCWorkload(cfg, seed=1, commands_per_client=3)

        class FakeClient:
            name = "c0"
            now = 0.0

        cmds = [wl.next_command(FakeClient()) for _ in range(5)]
        assert sum(c is not None for c in cmds) == 3
