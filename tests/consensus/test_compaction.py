"""Consensus-level tests for checkpointing, log truncation, and the
snapshot-recovery wiring inside the bare Paxos group (no multicast or
DynaStar layers on top)."""

import random
from dataclasses import dataclass

from repro.consensus import GroupConfig, PaxosGroup
from repro.consensus.paxos import ReplicaConfig
from repro.sim import ConstantLatency, Network, Simulator


@dataclass(frozen=True)
class Cmd:
    uid: str
    payload: int = 0


def make_group(seed=1, n_replicas=2, n_acceptors=3, replica_config=None, name="g0"):
    sim = Simulator()
    net = Network(
        sim,
        default_latency=ConstantLatency(0.001),
        rng=random.Random(seed),
    )
    config = GroupConfig(
        n_replicas=n_replicas,
        n_acceptors=n_acceptors,
        replica=replica_config or ReplicaConfig(),
    )
    group = PaxosGroup(name, net, config=config, rng=random.Random(seed))
    group.start()
    return sim, net, group


def submit_all(group, cmds):
    for cmd in cmds:
        for replica in group.replicas:
            replica.submit(cmd)


class TestCheckpointAndTruncate:
    def test_checkpoint_advances_watermark_and_floors_the_log(self):
        cfg = ReplicaConfig(checkpoint_interval=5, max_batch=1)
        sim, _, group = make_group(replica_config=cfg)
        submit_all(group, [Cmd(f"c{i}") for i in range(23)])
        sim.run(until=5.0)
        for replica in group.replicas:
            assert replica.next_deliver >= 23
            assert replica.checkpoint_watermark >= 20
            assert replica.checkpoint_watermark % 5 == 0
            assert replica.log_floor > 0
            # everything below the floor is compacted away
            assert all(i >= replica.log_floor for i in replica.decided)

    def test_acceptors_drop_instances_below_truncation_point(self):
        cfg = ReplicaConfig(checkpoint_interval=5, max_batch=1)
        sim, _, group = make_group(replica_config=cfg)
        submit_all(group, [Cmd(f"c{i}") for i in range(23)])
        sim.run(until=5.0)
        floor = min(r.log_floor for r in group.replicas)
        assert floor > 0
        for acceptor in group.acceptors:
            assert acceptor.truncated_below >= floor
            assert all(i >= acceptor.truncated_below for i in acceptor.accepted)

    def test_group_floor_is_min_of_member_watermarks(self):
        """Truncation never outruns the slowest live replica's checkpoint:
        the floor equals the smallest advertised watermark."""
        cfg = ReplicaConfig(checkpoint_interval=4, max_batch=1)
        sim, _, group = make_group(replica_config=cfg, n_replicas=3)
        submit_all(group, [Cmd(f"c{i}") for i in range(17)])
        sim.run(until=5.0)
        watermarks = [r.checkpoint_watermark for r in group.replicas]
        for replica in group.replicas:
            assert replica.log_floor <= min(watermarks)

    def test_no_checkpointing_when_interval_is_zero(self):
        sim, _, group = make_group(replica_config=ReplicaConfig(max_batch=1))  # checkpointing disabled
        submit_all(group, [Cmd(f"c{i}") for i in range(12)])
        sim.run(until=5.0)
        for replica in group.replicas:
            assert replica.checkpoint_watermark == 0
            assert replica.log_floor == 0
            assert replica.last_checkpoint is None
        for acceptor in group.acceptors:
            assert acceptor.truncated_below == 0

    def test_delivery_resumes_cleanly_after_truncation(self):
        cfg = ReplicaConfig(checkpoint_interval=3, max_batch=1)
        sim, _, group = make_group(replica_config=cfg)
        submit_all(group, [Cmd(f"a{i}") for i in range(9)])
        sim.run(until=2.0)
        submit_all(group, [Cmd(f"b{i}") for i in range(9)])
        sim.run(until=4.0)
        logs = [group.delivered_log(i) for i in range(2)]
        assert logs[0] == logs[1]
        for replica in group.replicas:
            assert replica.next_deliver >= 18


class TestSnapshotRecoveryBare:
    def test_replica_behind_truncation_installs_snapshot(self):
        cfg = ReplicaConfig(checkpoint_interval=4, max_batch=1)
        sim, _, group = make_group(replica_config=cfg)
        victim = group.replicas[1]
        sim.schedule_at(0.05, victim.crash)
        sim.schedule_at(3.0, victim.recover)
        submit_all(group, [Cmd(f"c{i}") for i in range(20)])
        sim.run(until=1.0)
        # Group truncated past the victim's position while it was down.
        survivor = group.replicas[0]
        assert survivor.log_floor > 0
        sim.run(until=10.0)
        assert not victim.crashed
        assert victim.next_deliver >= survivor.checkpoint_watermark
        assert victim.checkpoint_watermark == survivor.checkpoint_watermark or (
            victim.checkpoint_watermark > 0
        )
        # Base-layer app state transferred: delivered-uid dedup survives.
        assert {f"c{i}" for i in range(20)} <= victim.delivered_uids

    def test_snapshot_keeps_dedup_set_consistent(self):
        """After a snapshot install, re-submitting an old uid must not
        deliver it twice on the recovered replica."""
        cfg = ReplicaConfig(checkpoint_interval=4, max_batch=1)
        sim, _, group = make_group(replica_config=cfg)
        victim = group.replicas[1]
        sim.schedule_at(0.05, victim.crash)
        sim.schedule_at(3.0, victim.recover)
        submit_all(group, [Cmd(f"c{i}") for i in range(16)])
        sim.run(until=6.0)
        before = victim.next_deliver
        submit_all(group, [Cmd("c3")])  # duplicate of an old command
        sim.run(until=8.0)
        logs = [group.delivered_log(i) for i in range(2)]
        assert logs[0] == logs[1]
        assert [c for c in logs[0] if c == Cmd("c3")] == []


class TestRecoveryBackoff:
    def test_retry_delay_grows_exponentially_to_cap(self):
        """Re-sync retries back off 2x per attempt and saturate at
        ``recovery_retry_cap`` — observed on the actual timer arming."""
        cfg = ReplicaConfig(recovery_retry=0.2, recovery_retry_cap=1.0)
        sim, _, group = make_group(replica_config=cfg)
        replica = group.replicas[0]
        armed = []
        original = replica.set_timer

        def spy(delay, callback, *args, **kwargs):
            if callback == replica._recovery_retry_tick:
                armed.append(round(delay, 6))
            return original(delay, callback, *args, **kwargs)

        replica.set_timer = spy
        for attempt in range(6):
            replica._recovery_attempts = attempt
            replica._request_recovery()
        assert armed == [0.2, 0.4, 0.8, 1.0, 1.0, 1.0]

    def test_successful_recovery_resets_attempt_counter(self):
        cfg = ReplicaConfig(checkpoint_interval=0, max_batch=1)
        sim, _, group = make_group(replica_config=cfg)
        victim = group.replicas[1]
        sim.schedule_at(0.05, victim.crash)
        sim.schedule_at(1.0, victim.recover)
        submit_all(group, [Cmd(f"c{i}") for i in range(8)])
        sim.run(until=10.0)
        assert not victim._recovering
        assert victim._recovery_attempts == 0
