"""Unit and integration tests for the Multi-Paxos group."""

import random
from dataclasses import dataclass

import pytest

from repro.consensus import PaxosGroup, GroupConfig
from repro.consensus.failure import (
    crash_acceptor_at,
    crash_leader_at,
    crash_minority_acceptors_at,
)
from repro.consensus.messages import Submit
from repro.consensus.paxos import ReplicaConfig
from repro.sim import ConstantLatency, LogNormalLatency, Network, Simulator


@dataclass(frozen=True)
class Cmd:
    uid: str
    payload: int = 0


def make_group(
    latency=None,
    seed=1,
    n_replicas=2,
    n_acceptors=3,
    name="g0",
):
    sim = Simulator()
    net = Network(
        sim,
        default_latency=latency or ConstantLatency(0.001),
        rng=random.Random(seed),
    )
    config = GroupConfig(n_replicas=n_replicas, n_acceptors=n_acceptors)
    group = PaxosGroup(name, net, config=config, rng=random.Random(seed))
    group.start()
    return sim, net, group


def submit_all(group, cmds):
    """Submit each command to every replica, as real senders do."""
    for cmd in cmds:
        for replica in group.replicas:
            replica.submit(cmd)


class TestBasicOrdering:
    def test_single_value_is_delivered_everywhere(self):
        sim, _, group = make_group()
        group.replicas[0].submit(Cmd("c1"))
        sim.run(until=1.0)
        for i in range(len(group.replicas)):
            assert group.delivered_log(i) == [Cmd("c1")]

    def test_many_values_same_order_on_all_replicas(self):
        sim, _, group = make_group(n_replicas=3)
        cmds = [Cmd(f"c{i}", i) for i in range(50)]
        submit_all(group, cmds)
        sim.run(until=2.0)
        logs = [group.delivered_log(i) for i in range(3)]
        assert logs[0] == logs[1] == logs[2]
        assert sorted(c.uid for c in logs[0]) == sorted(c.uid for c in cmds)

    def test_duplicate_submissions_delivered_once(self):
        sim, _, group = make_group()
        for _ in range(5):
            submit_all(group, [Cmd("dup")])
        sim.run(until=2.0)
        assert group.delivered_log(0) == [Cmd("dup")]

    def test_submission_via_network_message(self):
        sim, net, group = make_group()

        from repro.sim.actors import Actor

        class Client(Actor):
            def on_message(self, sender, message):
                pass

        client = net.register(Client("client"))
        group.submit_via(client, Cmd("net-cmd"))
        sim.run(until=1.0)
        assert group.delivered_log(0) == [Cmd("net-cmd")]

    def test_fifo_from_single_submitter(self):
        sim, _, group = make_group()
        cmds = [Cmd(f"c{i}") for i in range(20)]
        for cmd in cmds:
            group.replicas[0].submit(cmd)
        sim.run(until=2.0)
        assert group.delivered_log(0) == cmds

    def test_values_without_uid_are_all_delivered(self):
        sim, _, group = make_group()
        group.replicas[0].submit("raw-1")
        group.replicas[0].submit("raw-2")
        sim.run(until=1.0)
        log0 = group.delivered_log(0)
        assert log0 == ["raw-1", "raw-2"]


class TestBatching:
    def test_burst_is_batched_into_few_instances(self):
        sim, _, group = make_group()
        leader = group.replicas[0]
        for i in range(100):
            leader.submit(Cmd(f"c{i}"))
        sim.run(until=2.0)
        assert len(group.delivered_log(0)) == 100
        # 100 values with max_batch=64 need at most a handful of instances
        assert leader.next_deliver <= 5

    def test_batch_respects_max_batch(self):
        sim, _, group = make_group()
        group.replicas[0].config.max_batch = 10
        for i in range(35):
            group.replicas[0].submit(Cmd(f"c{i}"))
        sim.run(until=2.0)
        from repro.consensus.paxos import Batch

        for batch in group.replicas[0].decided.values():
            assert isinstance(batch, Batch)
            assert len(batch.values) <= 10


class TestLeaderFailure:
    def test_leader_crash_new_leader_takes_over(self):
        sim, _, group = make_group(n_replicas=3)
        submit_all(group, [Cmd("before")])
        sim.run(until=1.0)
        assert group.delivered_log(1) == [Cmd("before")]
        crash_leader_at(sim, group, 1.5)
        sim.run(until=5.0)
        submit_all(group, [Cmd("after")])
        sim.run(until=10.0)
        for i in (1, 2):  # replica 0 crashed
            assert group.delivered_log(i) == [Cmd("before"), Cmd("after")]

    def test_value_buffered_at_follower_survives_leader_crash(self):
        sim, _, group = make_group(n_replicas=3)
        # Crash the leader instantly, before it can propose.
        group.replicas[0].crash()
        submit_all(group, [Cmd("survivor")])
        sim.run(until=10.0)
        assert group.delivered_log(1) == [Cmd("survivor")]
        assert group.delivered_log(2) == [Cmd("survivor")]

    def test_no_divergence_across_leader_change(self):
        sim, _, group = make_group(n_replicas=3, latency=LogNormalLatency(0.001))
        cmds = [Cmd(f"c{i}") for i in range(30)]
        for i, cmd in enumerate(cmds):
            sim.schedule(0.01 * i, submit_all, group, [cmd])
        crash_leader_at(sim, group, 0.15)
        sim.run(until=15.0)
        log1 = group.delivered_log(1)
        log2 = group.delivered_log(2)
        assert log1 == log2
        assert sorted(c.uid for c in log1) == sorted(c.uid for c in cmds)

    def test_successive_leader_crashes(self):
        sim, _, group = make_group(n_replicas=3)
        submit_all(group, [Cmd("a")])
        sim.run(until=1.0)
        group.replicas[0].crash()
        sim.run(until=4.0)
        submit_all(group, [Cmd("b")])
        sim.run(until=8.0)
        group.replicas[1].crash() if group.replicas[1].is_leader else None
        sim.run(until=12.0)
        submit_all(group, [Cmd("c")])
        sim.run(until=20.0)
        log = group.delivered_log(2)
        assert [c.uid for c in log] == ["a", "b", "c"]


class TestAcceptorFailure:
    def test_minority_acceptor_crash_no_impact(self):
        sim, _, group = make_group(n_acceptors=3)
        crash_minority_acceptors_at(sim, group, 0.0)
        submit_all(group, [Cmd(f"c{i}") for i in range(10)])
        sim.run(until=3.0)
        assert len(group.delivered_log(0)) == 10

    def test_majority_acceptor_crash_halts_progress(self):
        sim, _, group = make_group(n_acceptors=3)
        crash_acceptor_at(sim, group, 0, 0.0)
        crash_acceptor_at(sim, group, 1, 0.0)
        submit_all(group, [Cmd("stuck")])
        sim.run(until=5.0)
        assert group.delivered_log(0) == []

    def test_five_acceptors_tolerate_two_crashes(self):
        sim, _, group = make_group(n_acceptors=5)
        crash_acceptor_at(sim, group, 0, 0.0)
        crash_acceptor_at(sim, group, 1, 0.0)
        submit_all(group, [Cmd("ok")])
        sim.run(until=3.0)
        assert group.delivered_log(0) == [Cmd("ok")]


class TestCatchUp:
    def test_lagging_replica_catches_up(self):
        sim, net, group = make_group(n_replicas=3)
        # Disconnect replica 2 from everyone while values are decided.
        lagging = group.replica_names[2]
        for other in net.actor_names:
            if other != lagging:
                net.cut(lagging, other)
        submit_all(group, [Cmd(f"c{i}") for i in range(5)])
        sim.run(until=2.0)
        assert group.delivered_log(2) == []
        net.heal_all()
        sim.run(until=6.0)
        assert group.delivered_log(2) == group.delivered_log(0)
        assert len(group.delivered_log(2)) == 5


class TestAgreementUnderChaos:
    @pytest.mark.parametrize("seed", [3, 7, 11, 23])
    def test_random_latency_random_submitters_agree(self, seed):
        sim, _, group = make_group(
            latency=LogNormalLatency(0.002, sigma=0.8), seed=seed, n_replicas=3
        )
        rng = random.Random(seed)
        cmds = [Cmd(f"c{i}") for i in range(40)]
        for cmd in cmds:
            at = rng.uniform(0, 0.5)
            replica = group.replicas[rng.randrange(3)]
            sim.schedule(at, replica.submit, cmd)
            # also submit to the others (submit-to-all pattern), later
            for other in group.replicas:
                if other is not replica:
                    sim.schedule(at + 0.001, other.submit, cmd)
        sim.run(until=10.0)
        logs = [group.delivered_log(i) for i in range(3)]
        assert logs[0] == logs[1] == logs[2]
        assert len(logs[0]) == 40

    @pytest.mark.parametrize("seed", [5, 13])
    def test_agreement_with_leader_crash_mid_stream(self, seed):
        sim, _, group = make_group(
            latency=LogNormalLatency(0.002, sigma=0.5), seed=seed, n_replicas=3
        )
        rng = random.Random(seed)
        cmds = [Cmd(f"c{i}") for i in range(30)]
        for cmd in cmds:
            at = rng.uniform(0, 1.0)
            sim.schedule(at, submit_all, group, [cmd])
        crash_leader_at(sim, group, 0.5)
        sim.run(until=20.0)
        log1 = group.delivered_log(1)
        log2 = group.delivered_log(2)
        assert log1 == log2
        assert sorted(c.uid for c in log1) == sorted(c.uid for c in cmds)


class TestGroupIntrospection:
    def test_initial_leader_is_replica_zero(self):
        sim, _, group = make_group()
        sim.run(until=0.5)
        assert group.leader is group.replicas[0]

    def test_leader_after_crash_is_a_survivor(self):
        sim, _, group = make_group(n_replicas=3)
        group.replicas[0].crash()
        sim.run(until=5.0)
        # Either survivor may win the takeover race depending on jitter.
        assert group.leader in (group.replicas[1], group.replicas[2])

    def test_group_names_are_namespaced(self):
        _, _, group = make_group(name="p7")
        assert all(n.startswith("p7/") for n in group.replica_names)
        assert all(n.startswith("p7/") for n in group.acceptor_names)
