"""Edge-case tests for Multi-Paxos: recovery semantics, window limits,
message anomalies."""

import random
from dataclasses import dataclass

import pytest

from repro.consensus import PaxosGroup, GroupConfig
from repro.consensus.messages import (
    Accept,
    Accepted,
    Nack,
    Prepare,
    Promise,
    Submit,
)
from repro.consensus.paxos import Acceptor, Batch, ReplicaConfig
from repro.sim import ConstantLatency, LogNormalLatency, Network, Simulator


@dataclass(frozen=True)
class Cmd:
    uid: str


def make_group(n_replicas=3, n_acceptors=3, latency=None, seed=1):
    sim = Simulator()
    net = Network(
        sim,
        default_latency=latency or ConstantLatency(0.001),
        rng=random.Random(seed),
    )
    group = PaxosGroup(
        "g0",
        net,
        config=GroupConfig(n_replicas=n_replicas, n_acceptors=n_acceptors),
        rng=random.Random(seed),
    )
    group.start()
    return sim, net, group


class TestAcceptorProtocol:
    def setup_method(self):
        self.sim = Simulator()
        self.net = Network(self.sim, default_latency=ConstantLatency(0.001))
        self.acceptor = self.net.register(Acceptor("acc"))

        class Sink:
            def __init__(self):
                self.received = []

            def deliver(self, sender, message):
                self.received.append(message)

        from repro.sim.actors import Actor

        class Proposer(Actor):
            def __init__(self, name):
                super().__init__(name)
                self.received = []

            def on_message(self, sender, message):
                self.received.append(message)

        self.proposer = self.net.register(Proposer("prop"))

    def test_promise_carries_accepted_values(self):
        self.acceptor.accepted[3] = (0, "v3")
        self.acceptor.accepted[7] = (0, "v7")
        self.proposer.send("acc", Prepare(ballot=5, low=4))
        self.sim.run()
        promise = self.proposer.received[0]
        assert isinstance(promise, Promise)
        assert promise.accepted == {7: (0, "v7")}  # only >= low

    def test_lower_ballot_prepare_nacked(self):
        self.acceptor.promised = 10
        self.proposer.send("acc", Prepare(ballot=5, low=0))
        self.sim.run()
        assert isinstance(self.proposer.received[0], Nack)
        assert self.proposer.received[0].ballot == 10

    def test_lower_ballot_accept_nacked(self):
        self.acceptor.promised = 10
        self.proposer.send("acc", Accept(ballot=5, instance=0, value="v"))
        self.sim.run()
        assert isinstance(self.proposer.received[0], Nack)

    def test_equal_ballot_accept_accepted(self):
        self.acceptor.promised = 5
        self.proposer.send("acc", Accept(ballot=5, instance=2, value="v"))
        self.sim.run()
        assert isinstance(self.proposer.received[0], Accepted)
        assert self.acceptor.accepted[2] == (5, "v")


class TestWindowAndBatching:
    def test_window_limits_outstanding_proposals(self):
        sim, _, group = make_group()
        leader = group.replicas[0]
        leader.config.window = 2
        leader.config.max_batch = 1
        # Cut the leader off from acceptors so proposals cannot complete.
        for acc in group.acceptor_names:
            group.network.cut(leader.name, acc)
        for i in range(10):
            leader.submit(Cmd(f"c{i}"))
        sim.run(until=0.5)
        assert len(leader.proposals) <= 2

    def test_proposals_resume_when_window_frees(self):
        sim, net, group = make_group()
        leader = group.replicas[0]
        leader.config.window = 2
        leader.config.max_batch = 1
        for acc in group.acceptor_names:
            net.cut(leader.name, acc)
        for i in range(6):
            leader.submit(Cmd(f"c{i}"))
        sim.run(until=0.5)
        net.heal_all()
        # leader retransmits the stalled Accepts; everything drains
        sim.run(until=5.0)
        assert len(group.delivered_log(0)) == 6


class TestRecoveredValues:
    def test_new_leader_reproposes_accepted_value(self):
        """A value accepted by a quorum but not yet decided must survive a
        leader change (the classic Paxos safety scenario)."""
        sim, net, group = make_group(n_replicas=3)
        leader = group.replicas[0]
        leader.submit(Cmd("precious"))
        # Let Accepts reach the acceptors but crash the leader before it
        # can process the Accepted replies (cut only the return path).
        for acc in group.acceptor_names:
            net.cut_oneway(acc, leader.name)
        sim.run(until=0.5)
        leader.crash()
        sim.run(until=10.0)
        # A new leader must have recovered and decided the value.
        logs = [group.delivered_log(i) for i in (1, 2)]
        assert logs[0] == logs[1] == [Cmd("precious")]

    def test_noop_gaps_are_invisible_to_application(self):
        sim, net, group = make_group(n_replicas=3)
        leader = group.replicas[0]
        leader.config.max_batch = 1
        # Deliver two values, then crash the leader with a gap: instance 2
        # proposed only to a minority... simplest: crash right after
        # submitting several values with the accept channel cut.
        submitted = [Cmd(f"c{i}") for i in range(3)]
        for cmd in submitted:
            for replica in group.replicas:
                replica.submit(cmd)
        sim.run(until=2.0)
        leader.crash()
        for replica in group.replicas[1:]:
            replica.submit(Cmd("after"))
        sim.run(until=15.0)
        log = group.delivered_log(1)
        uids = [value.uid for value in log]
        assert "after" in uids
        assert "noop" not in uids


class TestChaosAgreement:
    @pytest.mark.parametrize("seed", [2, 4, 6])
    def test_message_storm_with_lossy_network(self, seed):
        sim = Simulator()
        net = Network(
            sim,
            default_latency=LogNormalLatency(0.002, sigma=0.7),
            rng=random.Random(seed),
            loss_probability=0.02,
        )
        group = PaxosGroup(
            "g0",
            net,
            config=GroupConfig(n_replicas=3, n_acceptors=5),
            rng=random.Random(seed),
        )
        group.start()
        rng = random.Random(seed)
        cmds = [Cmd(f"c{i}") for i in range(25)]
        for cmd in cmds:
            at = rng.uniform(0, 2.0)
            for replica in group.replicas:
                # submit-to-all with retransmission to mask losses
                sim.schedule(at, replica.submit, cmd)
                sim.schedule(at + 1.0, replica.submit, cmd)
                sim.schedule(at + 3.0, replica.submit, cmd)
        sim.run(until=30.0)
        logs = [group.delivered_log(i) for i in range(3)]
        assert logs[0] == logs[1] == logs[2]
        assert sorted(c.uid for c in logs[0]) == sorted(c.uid for c in cmds)
