"""Tests for the latency models (distributional properties)."""

import random

import pytest

from repro.sim.latency import (
    ConstantLatency,
    LogNormalLatency,
    UniformLatency,
    lan_default,
)


class TestConstantLatency:
    def test_sample_is_constant(self):
        model = ConstantLatency(0.25)
        rng = random.Random(1)
        assert all(model.sample(rng) == 0.25 for _ in range(10))
        assert model.mean() == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)


class TestUniformLatency:
    def test_bounds_respected(self):
        model = UniformLatency(0.1, 0.2)
        rng = random.Random(2)
        for _ in range(500):
            assert 0.1 <= model.sample(rng) <= 0.2
        assert model.mean() == pytest.approx(0.15)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.2, 0.1)
        with pytest.raises(ValueError):
            UniformLatency(-0.1, 0.2)


class TestLogNormalLatency:
    def test_median_is_approximately_right(self):
        model = LogNormalLatency(median=0.01, sigma=0.4)
        rng = random.Random(3)
        samples = sorted(model.sample(rng) for _ in range(4001))
        assert samples[2000] == pytest.approx(0.01, rel=0.1)

    def test_floor_enforced(self):
        model = LogNormalLatency(median=0.001, sigma=2.0, floor=0.0005)
        rng = random.Random(4)
        assert all(model.sample(rng) >= 0.0005 for _ in range(1000))

    def test_mean_above_median(self):
        model = LogNormalLatency(median=0.01, sigma=0.5)
        assert model.mean() > 0.01  # right-skewed tail

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.01, sigma=-1.0)

    def test_lan_default_is_submillisecond_median(self):
        model = lan_default()
        rng = random.Random(5)
        samples = sorted(model.sample(rng) for _ in range(2001))
        assert samples[1000] < 0.001
