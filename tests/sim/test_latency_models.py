"""Tests for the latency models (distributional properties)."""

import random

import pytest

from repro.sim.latency import (
    ConstantLatency,
    LogNormalLatency,
    UniformLatency,
    lan_default,
)


class TestConstantLatency:
    def test_sample_is_constant(self):
        model = ConstantLatency(0.25)
        rng = random.Random(1)
        assert all(model.sample(rng) == 0.25 for _ in range(10))
        assert model.mean() == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)


class TestUniformLatency:
    def test_bounds_respected(self):
        model = UniformLatency(0.1, 0.2)
        rng = random.Random(2)
        for _ in range(500):
            assert 0.1 <= model.sample(rng) <= 0.2
        assert model.mean() == pytest.approx(0.15)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.2, 0.1)
        with pytest.raises(ValueError):
            UniformLatency(-0.1, 0.2)


class TestLogNormalLatency:
    def test_median_is_approximately_right(self):
        model = LogNormalLatency(median=0.01, sigma=0.4)
        rng = random.Random(3)
        samples = sorted(model.sample(rng) for _ in range(4001))
        assert samples[2000] == pytest.approx(0.01, rel=0.1)

    def test_floor_enforced(self):
        model = LogNormalLatency(median=0.001, sigma=2.0, floor=0.0005)
        rng = random.Random(4)
        assert all(model.sample(rng) >= 0.0005 for _ in range(1000))

    def test_mean_above_median(self):
        model = LogNormalLatency(median=0.01, sigma=0.5)
        assert model.mean() > 0.01  # right-skewed tail

    def test_mean_accounts_for_floor(self):
        """The analytic mean must match the empirical mean of floored
        samples — with a floor above the median the plain log-normal
        mean understates it badly."""
        import math

        model = LogNormalLatency(median=1.0, sigma=0.5, floor=1.5)
        rng = random.Random(7)
        n = 200_000
        empirical = sum(model.sample(rng) for _ in range(n)) / n
        assert model.mean() == pytest.approx(empirical, rel=0.01)
        untruncated = math.exp(math.log(1.0) + 0.5**2 / 2)
        assert model.mean() > untruncated  # floor only raises the mean

    def test_mean_with_floor_zero_is_plain_lognormal(self):
        import math

        model = LogNormalLatency(median=0.01, sigma=0.4)
        assert model.mean() == pytest.approx(
            math.exp(math.log(0.01) + 0.4**2 / 2)
        )

    def test_mean_with_negligible_floor_close_to_plain(self):
        """A floor far below the distribution's mass barely moves the
        mean (lan_default's floor regime)."""
        import math

        model = lan_default()  # median=0.00035, sigma=0.35, floor=0.00008
        plain = math.exp(math.log(0.00035) + 0.35**2 / 2)
        assert model.mean() >= plain
        assert model.mean() == pytest.approx(plain, rel=1e-4)

    def test_mean_sigma_zero_with_floor(self):
        model = LogNormalLatency(median=0.001, sigma=0.0, floor=0.002)
        assert model.mean() == 0.002
        model = LogNormalLatency(median=0.003, sigma=0.0, floor=0.002)
        assert model.mean() == 0.003

    def test_empirical_mean_with_dominant_floor(self):
        """Floor above nearly all the mass: mean approaches the floor."""
        model = LogNormalLatency(median=0.0001, sigma=0.1, floor=0.01)
        rng = random.Random(9)
        empirical = sum(model.sample(rng) for _ in range(20_000)) / 20_000
        assert model.mean() == pytest.approx(empirical, rel=0.001)
        assert model.mean() == pytest.approx(0.01, rel=0.01)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.01, sigma=-1.0)

    def test_lan_default_is_submillisecond_median(self):
        model = lan_default()
        rng = random.Random(5)
        samples = sorted(model.sample(rng) for _ in range(2001))
        assert samples[1000] < 0.001
