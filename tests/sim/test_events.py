"""Unit tests for the event heap and virtual clock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advanced to the until bound
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "on-bound")
    sim.run(until=2.0)
    assert fired == ["on-bound"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    fired = []
    sim.schedule_at(5.0, fired.append, "abs")
    sim.run()
    assert fired == ["abs"]
    assert sim.now == 5.0


def test_max_events_limit():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    processed = sim.run(max_events=4)
    assert processed == 4
    assert fired == [0, 1, 2, 3]


def test_stop_halts_processing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_pending_counts_live_events():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    e1.cancel()
    assert sim.pending() == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.peek_time() == 2.0


def test_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_events_processed_accumulates():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


# ---------------------------------------------------------------------------
# Clock monotonicity: run(until, max_events) must never move time backwards
# ---------------------------------------------------------------------------


def test_max_events_exit_does_not_jump_clock_past_live_events():
    """Regression: ``run(until=10, max_events=2)`` used to advance the
    clock to 10.0 with a live event still queued at t=6, so the next
    ``run()`` moved virtual time *backwards* (10.0 -> 6.0)."""
    sim = Simulator()
    for t in (2.0, 4.0, 6.0):
        sim.schedule(t, lambda: None)
    sim.run(until=10.0, max_events=2)
    assert sim.now == 4.0  # NOT 10.0: an event at 6.0 is still live
    before = sim.now
    sim.run()
    assert sim.now >= before
    assert sim.now == 6.0


def test_stop_exit_does_not_jump_clock_past_live_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.stop())
    sim.schedule(4.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 1.0
    sim.run()
    assert sim.now == 4.0


def test_max_events_exit_with_drained_heap_still_tiles_to_until():
    """When the heap IS drained past ``until``, the clock still tiles
    forward exactly as before — even if ``max_events`` was given."""
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(20.0, lambda: None)
    sim.run(until=10.0, max_events=5)
    assert sim.now == 10.0


def test_max_events_exit_ignores_cancelled_events_before_until():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    doomed = sim.schedule(6.0, lambda: None)
    doomed.cancel()
    sim.run(until=10.0, max_events=1)
    assert sim.now == 10.0  # only a cancelled event remained before until


def test_callback_exception_leaves_consistent_state():
    """An exception escaping a callback must not corrupt ``now`` or leave
    the simulator marked running; the run can be resumed."""
    sim = Simulator()
    fired = []

    def boom():
        raise RuntimeError("callback failure")

    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, boom)
    sim.schedule(3.0, fired.append, "b")
    with pytest.raises(RuntimeError):
        sim.run(until=10.0)
    assert sim.now == 2.0  # the failing event's time, not 10.0
    assert sim.events_processed == 2  # the failing event is counted
    processed = sim.run(until=10.0)  # not "already running"; resumes
    assert processed == 1
    assert fired == ["a", "b"]
    assert sim.now == 10.0


def test_schedule_at_clamps_negative_float_residue():
    """``schedule_at(t)`` with ``t`` an ulp below ``now`` (arithmetic
    residue, not genuine past scheduling) must not raise."""
    sim = Simulator()
    sim.schedule(0.1 + 0.2, lambda: None)  # 0.30000000000000004
    sim.run()
    assert sim.now > 0.3  # the residue case: 0.3 - now is ~ -4e-17
    fired = []
    sim.schedule_at(0.3, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now >= 0.3


def test_schedule_at_still_rejects_genuine_past_times():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


@settings(max_examples=200, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    runs=st.lists(
        st.one_of(
            st.tuples(st.just("until"), st.floats(min_value=0.0, max_value=120.0)),
            st.tuples(st.just("max_events"), st.integers(min_value=0, max_value=10)),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_interleaved_runs_never_decrease_now_and_fire_in_order(times, runs):
    """Property: any interleaving of ``run(until=...)`` and
    ``run(max_events=...)`` observes a non-decreasing clock, and events
    fire in (time, seq) order."""
    sim = Simulator()
    fired = []
    for i, t in enumerate(sorted(times)):
        sim.schedule(t, lambda t=t, i=i: fired.append((t, i)))
    observed = [sim.now]
    for kind, arg in runs:
        if kind == "until":
            if arg < sim.now:
                continue  # tiling backwards is a caller error by contract
            sim.run(until=arg)
        else:
            sim.run(max_events=arg)
        observed.append(sim.now)
    sim.run()  # drain
    observed.append(sim.now)
    assert observed == sorted(observed), f"clock went backwards: {observed}"
    assert fired == sorted(fired), "events fired out of (time, seq) order"
