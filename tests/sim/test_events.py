"""Unit tests for the event heap and virtual clock."""

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advanced to the until bound
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "on-bound")
    sim.run(until=2.0)
    assert fired == ["on-bound"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    fired = []
    sim.schedule_at(5.0, fired.append, "abs")
    sim.run()
    assert fired == ["abs"]
    assert sim.now == 5.0


def test_max_events_limit():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    processed = sim.run(max_events=4)
    assert processed == 4
    assert fired == [0, 1, 2, 3]


def test_stop_halts_processing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_pending_counts_live_events():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    e1.cancel()
    assert sim.pending() == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.peek_time() == 2.0


def test_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_events_processed_accumulates():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5
