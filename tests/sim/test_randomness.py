"""Tests for seeded RNG streams and the Zipf generator."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.randomness import (
    SeedSequenceFactory,
    ZipfGenerator,
    weighted_choice,
    zipf_cdf,
)


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        f = SeedSequenceFactory(42)
        assert f.rng("net").random() == f.rng("net").random()

    def test_different_names_differ(self):
        f = SeedSequenceFactory(42)
        assert f.rng("net").random() != f.rng("clients").random()

    def test_different_roots_differ(self):
        a = SeedSequenceFactory(1).rng("net").random()
        b = SeedSequenceFactory(2).rng("net").random()
        assert a != b

    def test_child_seed_is_stable_across_instances(self):
        assert (
            SeedSequenceFactory(9).child_seed("x")
            == SeedSequenceFactory(9).child_seed("x")
        )


class TestZipfCdf:
    def test_monotone_and_normalized(self):
        cdf = zipf_cdf(100, 0.95)
        assert cdf == sorted(cdf)
        assert cdf[-1] == pytest.approx(1.0)

    def test_rho_zero_is_uniform(self):
        cdf = zipf_cdf(4, 0.0)
        assert cdf == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_skew_favors_low_ranks(self):
        cdf = zipf_cdf(1000, 0.95)
        # the top 10% of ranks should hold far more than 10% of the mass
        assert cdf[99] > 0.3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_cdf(0, 0.95)
        with pytest.raises(ValueError):
            zipf_cdf(10, -1.0)

    @given(n=st.integers(1, 500), rho=st.floats(0.0, 2.0))
    @settings(max_examples=50)
    def test_cdf_properties_hold_generally(self, n, rho):
        cdf = zipf_cdf(n, rho)
        assert len(cdf) == n
        assert all(0.0 < v <= 1.0 for v in cdf)
        assert cdf[-1] == pytest.approx(1.0)


class TestZipfGenerator:
    def test_draws_within_range(self):
        gen = ZipfGenerator(50, 0.95, random.Random(1))
        for _ in range(500):
            assert 1 <= gen.draw() <= 50

    def test_draw_index_zero_based(self):
        gen = ZipfGenerator(10, 0.95, random.Random(1))
        assert all(0 <= gen.draw_index() <= 9 for _ in range(200))

    def test_rank_one_is_most_frequent(self):
        gen = ZipfGenerator(100, 0.95, random.Random(3))
        counts = Counter(gen.draw() for _ in range(20000))
        assert counts[1] == max(counts.values())

    def test_deterministic_given_seed(self):
        a = ZipfGenerator(100, 0.95, random.Random(5))
        b = ZipfGenerator(100, 0.95, random.Random(5))
        assert [a.draw() for _ in range(100)] == [b.draw() for _ in range(100)]


class TestWeightedChoice:
    def test_respects_zero_weight(self):
        rng = random.Random(1)
        for _ in range(100):
            assert weighted_choice(rng, ["a", "b"], [0.0, 1.0]) == "b"

    def test_mix_roughly_matches_weights(self):
        rng = random.Random(2)
        counts = Counter(
            weighted_choice(rng, ["x", "y"], [0.8, 0.2]) for _ in range(5000)
        )
        assert 0.75 < counts["x"] / 5000 < 0.85

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(1), ["a"], [0.5, 0.5])

    def test_zero_total_raises(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(1), ["a"], [0.0])
