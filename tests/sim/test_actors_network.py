"""Unit tests for actors, timers, and the simulated network."""

import random

import pytest

from repro.sim import (
    Actor,
    ConstantLatency,
    Network,
    NetworkPartitionError,
    Simulator,
    UniformLatency,
)


class Recorder(Actor):
    """Test actor that records (time, sender, message) tuples."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.now, sender, message))


class Echo(Actor):
    def on_message(self, sender, message):
        self.send(sender, ("echo", message))


def make_net(latency=None, loss=0.0, seed=1):
    sim = Simulator()
    net = Network(
        sim,
        default_latency=latency or ConstantLatency(0.001),
        rng=random.Random(seed),
        loss_probability=loss,
    )
    return sim, net


def test_message_delivered_with_latency():
    sim, net = make_net(ConstantLatency(0.5))
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    a.send("b", "hello")
    sim.run()
    assert b.received == [(0.5, "a", "hello")]


def test_send_all_broadcasts():
    sim, net = make_net()
    a = net.register(Recorder("a"))
    receivers = [net.register(Recorder(f"r{i}")) for i in range(3)]
    a.send_all([r.name for r in receivers], "ping")
    sim.run()
    for r in receivers:
        assert len(r.received) == 1


def test_request_reply_round_trip():
    sim, net = make_net(ConstantLatency(0.25))
    client = net.register(Recorder("client"))
    net.register(Echo("server"))
    client.send("server", "ping")
    sim.run()
    assert client.received == [(0.5, "server", ("echo", "ping"))]


def test_fifo_per_link_with_constant_latency():
    sim, net = make_net(ConstantLatency(0.1))
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    for i in range(5):
        a.send("b", i)
    sim.run()
    assert [m for (_, _, m) in b.received] == [0, 1, 2, 3, 4]


def test_unknown_destination_is_dropped_silently():
    sim, net = make_net()
    a = net.register(Recorder("a"))
    a.send("ghost", "boo")
    sim.run()
    assert net.messages_dropped == 1


def test_duplicate_names_rejected():
    _, net = make_net()
    net.register(Recorder("a"))
    with pytest.raises(ValueError):
        net.register(Recorder("a"))


def test_crashed_actor_drops_messages():
    sim, net = make_net()
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    b.crash()
    a.send("b", "lost")
    sim.run()
    assert b.received == []
    assert net.messages_dropped == 1


def test_crashed_actor_cannot_send():
    sim, net = make_net()
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    a.crash()
    a.send("b", "nope")
    sim.run()
    assert b.received == []


def test_recovered_actor_receives_again():
    sim, net = make_net()
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    b.crash()
    b.recover()
    a.send("b", "back")
    sim.run()
    assert len(b.received) == 1


def test_message_in_flight_to_crashing_actor_is_dropped():
    sim, net = make_net(ConstantLatency(1.0))
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    a.send("b", "in-flight")
    sim.schedule(0.5, b.crash)
    sim.run()
    assert b.received == []


def test_network_cut_blocks_both_directions():
    sim, net = make_net()
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    net.cut("a", "b")
    a.send("b", "x")
    b.send("a", "y")
    sim.run()
    assert a.received == [] and b.received == []


def test_heal_restores_link():
    sim, net = make_net()
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    net.cut("a", "b")
    net.heal("a", "b")
    a.send("b", "x")
    sim.run()
    assert len(b.received) == 1


def test_partition_groups_cuts_cross_links_only():
    sim, net = make_net()
    actors = {n: net.register(Recorder(n)) for n in ("a1", "a2", "b1", "b2")}
    net.partition_groups(["a1", "a2"], ["b1", "b2"])
    actors["a1"].send("a2", "intra")
    actors["a1"].send("b1", "cross")
    sim.run()
    assert len(actors["a2"].received) == 1
    assert actors["b1"].received == []
    net.heal_all()
    actors["a1"].send("b1", "cross2")
    sim.run()
    assert len(actors["b1"].received) == 1


def test_cut_unknown_actor_raises():
    _, net = make_net()
    net.register(Recorder("a"))
    with pytest.raises(NetworkPartitionError):
        net.cut("a", "ghost")


def test_loss_probability_drops_some_messages():
    sim, net = make_net(loss=0.5, seed=42)
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    for i in range(200):
        a.send("b", i)
    sim.run()
    assert 0 < len(b.received) < 200
    assert net.messages_dropped == 200 - len(b.received)


def test_pair_latency_override():
    sim, net = make_net(ConstantLatency(1.0))
    a = net.register(Recorder("a"))
    b = net.register(Recorder("b"))
    c = net.register(Recorder("c"))
    net.set_pair_latency("a", "b", ConstantLatency(0.1))
    a.send("b", "fast")
    a.send("c", "slow")
    sim.run()
    assert b.received[0][0] == pytest.approx(0.1)
    assert c.received[0][0] == pytest.approx(1.0)


def test_uniform_latency_within_bounds():
    sim, net = make_net(UniformLatency(0.2, 0.4))
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    for i in range(50):
        a.send("b", i)
    sim.run()
    for t, _, _ in b.received:
        assert 0.2 <= t <= 0.4


def test_one_shot_timer():
    sim, net = make_net()
    a = net.register(Recorder("a"))
    fired = []
    a.set_timer(2.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.0]


def test_periodic_timer_fires_repeatedly():
    sim, net = make_net()
    a = net.register(Recorder("a"))
    fired = []
    timer = a.set_periodic_timer(1.0, lambda: fired.append(sim.now))
    sim.run(until=3.5)
    timer.cancel()
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_timer_cancel_prevents_firing():
    sim, net = make_net()
    a = net.register(Recorder("a"))
    fired = []
    timer = a.set_timer(1.0, lambda: fired.append(1))
    timer.cancel()
    sim.run()
    assert fired == []


def test_timer_reset_postpones_firing():
    sim, net = make_net()
    a = net.register(Recorder("a"))
    fired = []
    timer = a.set_timer(2.0, lambda: fired.append(sim.now))
    sim.run(until=1.0)
    timer.reset()  # now due at t=3.0
    sim.run()
    assert fired == [3.0]


def test_crash_cancels_timers():
    sim, net = make_net()
    a = net.register(Recorder("a"))
    fired = []
    a.set_periodic_timer(1.0, lambda: fired.append(sim.now))
    sim.schedule(2.5, a.crash)
    sim.run(until=10.0)
    assert fired == [1.0, 2.0]


def test_network_stats_accounting():
    sim, net = make_net()
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    a.send("b", "x")
    a.send("ghost", "y")
    sim.run()
    stats = net.stats()
    assert stats["sent"] == 2
    assert stats["delivered"] == 1
    assert stats["dropped"] == 1


def test_deterministic_given_seed():
    def run(seed):
        sim, net = make_net(UniformLatency(0.0, 1.0), seed=seed)
        a, b = net.register(Recorder("a")), net.register(Recorder("b"))
        for i in range(20):
            a.send("b", i)
        sim.run()
        return [(t, m) for (t, _, m) in b.received]

    assert run(7) == run(7)
    assert run(7) != run(8)

def test_one_way_cut_blocks_single_direction():
    sim, net = make_net()
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    net.cut_oneway("a", "b")
    a.send("b", "blocked")
    b.send("a", "delivered")
    sim.run()
    assert b.received == []
    assert len(a.received) == 1
    assert net.drops_by_reason["link_cut"] == 1


def test_heal_oneway_restores_direction():
    sim, net = make_net()
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    net.cut_oneway("a", "b")
    net.heal_oneway("a", "b")
    a.send("b", "x")
    sim.run()
    assert len(b.received) == 1


def test_heal_unknown_actor_raises():
    _, net = make_net()
    net.register(Recorder("a"))
    with pytest.raises(NetworkPartitionError):
        net.heal("a", "ghost")
    with pytest.raises(NetworkPartitionError):
        net.heal_oneway("ghost", "a")
    with pytest.raises(NetworkPartitionError):
        net.cut_oneway("a", "ghost")


def test_heal_groups_restores_cross_links():
    sim, net = make_net()
    actors = {n: net.register(Recorder(n)) for n in ("a1", "a2", "b1", "b2")}
    net.partition_groups(["a1", "a2"], ["b1", "b2"])
    net.heal_groups(["a1", "a2"], ["b1", "b2"])
    actors["a1"].send("b2", "x")
    actors["b1"].send("a2", "y")
    sim.run()
    assert len(actors["b2"].received) == 1
    assert len(actors["a2"].received) == 1


def test_loss_burst_applies_only_inside_window():
    sim, net = make_net(ConstantLatency(0.001), seed=5)
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    net.schedule_loss_burst(start=1.0, duration=1.0, probability=0.9)
    for i in range(50):
        sim.schedule(0.1 + i * 0.001, a.send, "b", ("before", i))
    for i in range(50):
        sim.schedule(1.2 + i * 0.001, a.send, "b", ("during", i))
    for i in range(50):
        sim.schedule(3.0 + i * 0.001, a.send, "b", ("after", i))
    sim.run()
    phases = [m[0] for (_, _, m) in b.received]
    assert phases.count("before") == 50
    assert phases.count("after") == 50
    assert phases.count("during") < 50
    assert net.drops_by_reason["loss_burst"] == 50 - phases.count("during")


def test_loss_burst_maximum_of_base_and_burst():
    _, net = make_net(loss=0.3)
    net.schedule_loss_burst(start=0.0, duration=5.0, probability=0.1)
    p, reason = net._effective_loss(1.0)
    assert p == 0.3 and reason == "loss"
    net.schedule_loss_burst(start=0.0, duration=5.0, probability=0.8)
    p, reason = net._effective_loss(1.0)
    assert p == 0.8 and reason == "loss_burst"


def test_delay_spike_adds_latency_inside_window():
    sim, net = make_net(ConstantLatency(0.1))
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    net.schedule_delay_spike(start=1.0, duration=1.0, extra=0.5)
    sim.schedule(0.5, a.send, "b", "normal")
    sim.schedule(1.5, a.send, "b", "slow")
    sim.schedule(2.5, a.send, "b", "normal2")
    sim.run()
    times = {m: t for (t, _, m) in b.received}
    assert times["normal"] == pytest.approx(0.6)
    assert times["slow"] == pytest.approx(2.1)
    assert times["normal2"] == pytest.approx(2.6)


def test_chaos_window_validation():
    _, net = make_net()
    with pytest.raises(ValueError):
        net.schedule_loss_burst(0.0, 1.0, 1.5)
    with pytest.raises(ValueError):
        net.schedule_loss_burst(0.0, -1.0, 0.5)
    with pytest.raises(ValueError):
        net.schedule_delay_spike(0.0, 1.0, -0.1)
    with pytest.raises(ValueError):
        net.schedule_delay_spike(0.0, 0.0, 0.1)


def test_drop_reasons_in_stats():
    sim, net = make_net(loss=0.5, seed=3)
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    net.cut("a", "b")
    a.send("b", "cut")
    net.heal("a", "b")
    a.send("ghost", "nowhere")
    for i in range(40):
        a.send("b", i)
    sim.run()
    reasons = net.stats()["drop_reasons"]
    assert reasons["link_cut"] == 1
    assert reasons["unknown_destination"] == 1
    assert reasons.get("loss", 0) > 0
    assert sum(reasons.values()) == net.messages_dropped


def test_drop_reasons_surface_through_monitor():
    from repro.sim import Monitor

    sim = Simulator()
    monitor = Monitor()
    net = Network(
        sim,
        default_latency=ConstantLatency(0.001),
        rng=random.Random(1),
        monitor=monitor,
    )
    a, b = net.register(Recorder("a")), net.register(Recorder("b"))
    net.cut("a", "b")
    a.send("b", "x")
    a.send("b", "y")
    sim.run()
    counters = monitor.labeled_counters("net_drop")
    assert counters == {"link_cut": 2}
