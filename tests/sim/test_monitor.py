"""Tests for metrics primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.monitor import Counter, Gauge, Histogram, Monitor, TimeSeries


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("x")
        g.set(3.0)
        g.add(-1.0)
        assert g.value == 2.0


class TestHistogram:
    def test_empty_stats_are_nan(self):
        h = Histogram("lat")
        assert math.isnan(h.mean())
        assert math.isnan(h.percentile(50))

    def test_mean(self):
        h = Histogram("lat")
        h.extend([1.0, 2.0, 3.0])
        assert h.mean() == pytest.approx(2.0)

    def test_percentiles_exact(self):
        h = Histogram("lat")
        h.extend(float(i) for i in range(1, 101))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)

    def test_percentile_bounds_checked(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_single_sample(self):
        h = Histogram("lat")
        h.observe(7.0)
        assert h.percentile(95) == 7.0

    def test_observe_after_percentile_invalidate_cache(self):
        h = Histogram("lat")
        h.observe(1.0)
        assert h.percentile(50) == 1.0
        h.observe(100.0)
        assert h.percentile(100) == 100.0

    def test_cdf_monotone_and_complete(self):
        h = Histogram("lat")
        h.extend([0.1, 0.2, 0.2, 0.5, 1.0])
        cdf = h.cdf(points=10)
        fracs = [f for _, f in cdf]
        assert fracs == sorted(fracs)
        assert cdf[-1][1] == pytest.approx(1.0)

    def test_cdf_of_constant_data(self):
        h = Histogram("lat")
        h.extend([2.0, 2.0])
        assert h.cdf() == [(2.0, 1.0)]

    def test_summary_keys(self):
        h = Histogram("lat")
        h.extend([1.0, 2.0])
        assert set(h.summary()) == {"count", "mean", "p50", "p95", "p99"}

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_percentiles_within_data_range(self, data):
        h = Histogram("lat")
        h.extend(data)
        for p in (0, 25, 50, 75, 95, 100):
            assert min(data) <= h.percentile(p) <= max(data)


class TestTimeSeries:
    def test_bucketing(self):
        s = TimeSeries("tput", width=1.0)
        s.record(0.1)
        s.record(0.9)
        s.record(1.5)
        assert s.buckets() == [(0.0, 2.0), (1.0, 1.0)]

    def test_gaps_filled_with_zero(self):
        s = TimeSeries("tput")
        s.record(0.5)
        s.record(3.5)
        assert s.buckets() == [(0.0, 1.0), (1.0, 0.0), (2.0, 0.0), (3.0, 1.0)]

    def test_rates_divide_by_width(self):
        s = TimeSeries("tput", width=2.0)
        s.record(0.0, 10.0)
        assert s.rates() == [(0.0, 5.0)]

    def test_total_and_value_at(self):
        s = TimeSeries("tput")
        s.record(1.2, 3.0)
        s.record(1.8, 2.0)
        assert s.total() == 5.0
        assert s.value_at(1.5) == 5.0
        assert s.value_at(10.0) == 0.0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            TimeSeries("x", width=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries("x").record(-1.0)

    def test_empty_series(self):
        assert TimeSeries("x").buckets() == []


class TestMonitor:
    def test_same_name_returns_same_object(self):
        m = Monitor()
        assert m.counter("a") is m.counter("a")
        assert m.histogram("h") is m.histogram("h")
        assert m.series("s") is m.series("s")
        assert m.gauge("g") is m.gauge("g")

    def test_snapshot_shape(self):
        m = Monitor()
        m.counter("cmds").inc(3)
        m.histogram("lat").observe(0.5)
        m.series("tput").record(0.0)
        m.gauge("load").set(1.5)
        snap = m.snapshot()
        assert snap["counters"]["cmds"] == 3
        assert snap["gauges"]["load"] == 1.5
        assert snap["histograms"]["lat"]["count"] == 1.0
        assert snap["series"]["tput"] == [(0.0, 1.0)]

    def test_counters_dict(self):
        m = Monitor()
        m.counter("a").inc()
        assert m.counters() == {"a": 1}


class TestHistogramObserveMany:
    def test_observe_many_is_an_alias_of_extend(self):
        assert Histogram.observe_many is Histogram.extend
        h = Histogram("lat")
        h.observe_many([1.0, 2.0, 3.0])
        assert h.count == 3 and h.mean() == pytest.approx(2.0)


class TestTimeSeriesMerge:
    def test_merge_from_adds_bucket_totals(self):
        a = TimeSeries("tput")
        b = TimeSeries("tput")
        a.record(0.5, 2.0)
        b.record(0.5, 3.0)
        b.record(2.5, 1.0)
        a.merge_from(b)
        assert a.buckets() == [(0.0, 5.0), (1.0, 0.0), (2.0, 1.0)]

    def test_merge_from_rejects_width_mismatch(self):
        with pytest.raises(ValueError, match="widths"):
            TimeSeries("x", width=1.0).merge_from(TimeSeries("x", width=2.0))


class TestLabeledMetrics:
    def test_label_combinations_are_distinct_metrics(self):
        m = Monitor()
        m.counter("fault", kind="cut").inc(2)
        m.counter("fault", kind="crash").inc()
        m.counter("fault").inc(9)  # unlabeled sibling stays separate
        assert m.counter("fault", kind="cut").value == 2
        assert m.labeled_counters("fault") == {"cut": 2, "crash": 1}

    def test_label_order_does_not_matter(self):
        m = Monitor()
        m.counter("x", a=1, b=2).inc()
        assert m.counter("b", a=1) is not m.counter("b", a=2)
        assert m.counter("x", b=2, a=1).value == 1

    def test_multi_label_key_is_sorted_value_tuple(self):
        m = Monitor()
        m.counter("rpc", method="get", code=200).inc(3)
        # keys sorted alphabetically: code, method
        assert m.labeled_counters("rpc") == {(200, "get"): 3}

    def test_labeled_series(self):
        m = Monitor()
        m.series("tput", partition="p0").record(0.1, 5.0)
        m.series("tput", partition="p1").record(0.1, 7.0)
        by_part = m.labeled_series("tput")
        assert set(by_part) == {"p0", "p1"}
        assert by_part["p0"].total() == 5.0

    def test_counters_with_prefix_shim_is_gone(self):
        # Deprecated in the observability PR, removed in the recovery PR:
        # all callers read labeled metrics via labeled_counters now.
        assert not hasattr(Monitor, "counters_with_prefix")


class TestMonitorMerge:
    def test_merge_folds_all_metric_kinds(self):
        a, b = Monitor(), Monitor()
        a.counter("cmds").inc(2)
        b.counter("cmds").inc(3)
        b.counter("fault", kind="cut").inc()
        a.gauge("load").set(1.0)
        b.gauge("load").set(0.5)
        a.histogram("lat").observe(1.0)
        b.histogram("lat").extend([2.0, 3.0])
        b.series("tput", partition="p0").record(0.1, 4.0)
        assert a.merge(b) is a
        assert a.counter("cmds").value == 5
        assert a.labeled_counters("fault") == {"cut": 1}
        assert a.gauge("load").value == pytest.approx(1.5)
        assert a.histogram("lat").count == 3
        assert a.series("tput", partition="p0").total() == 4.0

    def test_merge_preserves_label_identity(self):
        a, b = Monitor(), Monitor()
        a.counter("fault", kind="cut").inc()
        b.counter("fault", kind="crash").inc()
        a.merge(b)
        assert a.labeled_counters("fault") == {"cut": 1, "crash": 1}
