"""Focused unit tests for partition-server internals: borrow selection,
wildcards, plan-transfer plumbing, and the service-time gate."""

import pytest

from repro.core.client import ScriptedWorkload
from repro.smr import Command
from repro.smr.statemachine import AppStateMachine, NodeWildcard, VariableStore

from tests.core.conftest import build_system


class WildcardApp(AppStateMachine):
    """Two nodes ("left"/"right"), several vars each; ``scan`` reads every
    variable of a node via a wildcard; ``peek`` reads one concrete var."""

    def initial_variables(self):
        return {("left", i): i for i in range(3)} | {
            ("right", i): 10 + i for i in range(3)
        }

    def graph_node_of(self, var):
        return var[0]

    def variables_of(self, command):
        if command.op == "scan":
            return frozenset({NodeWildcard(command.args[0])})
        if command.op == "scan_both":
            return frozenset(
                {NodeWildcard("left"), NodeWildcard("right")}
            )
        return frozenset({command.args[0]})

    def borrow_variables(self, command, node, store, node_vars):
        if command.op == "scan_both" and command.args and command.args[0] == "filtered":
            # ship only index-0 vars: exercises the filter path
            return [v for v in node_vars if v[1] == 0]
        return None

    def execute(self, command, store):
        if command.op in ("scan", "scan_both"):
            return sorted(
                (v, store.get(v))
                for v in store.variables()
                if isinstance(v, tuple) and v[0] in ("left", "right")
            )
        return store.get(command.args[0])


def wildcard_system(**kwargs):
    from repro.core import DynaStarSystem, SystemConfig
    from repro.sim import ConstantLatency

    placement = {"left": 0, "right": 1}
    return DynaStarSystem(
        WildcardApp(),
        SystemConfig(
            n_partitions=2,
            seed=1,
            latency=ConstantLatency(0.001),
            placement=placement,
            **kwargs,
        ),
    )


class TestWildcardBorrowing:
    def test_single_node_scan_is_single_partition(self):
        system = wildcard_system()
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "scan", ("left",))])
        )
        system.run(until=10.0)
        assert client.completed == 1
        assert system.monitor.counters().get("multi_partition_commands", 0) == 0

    def test_cross_node_scan_ships_whole_wildcard_node(self):
        system = wildcard_system()
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "scan_both", ())])
        )
        system.run(until=10.0)
        assert client.completed == 1
        result = client.results["c:0"][1]
        assert len(result) == 6  # saw every var of both nodes

    def test_borrow_filter_limits_shipping(self):
        system = wildcard_system()
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "scan_both", ("filtered",))])
        )
        system.run(until=10.0)
        assert client.completed == 1
        # only 1 var borrowed + returned across the wire (instead of 3)
        assert system.monitor.counters()["objects_exchanged"] == 2

    def test_borrowed_wildcard_vars_return_home(self):
        system = wildcard_system()
        client = system.add_client(
            ScriptedWorkload(
                [
                    Command("c:0", "scan_both", ()),
                    Command("c:1", "scan", ("right",)),
                ]
            )
        )
        system.run(until=20.0)
        assert client.completed == 2
        right_server = system.servers(system.initial_assignment["right"])[0]
        assert all(("right", i) in right_server.store for i in range(3))


class TestServiceGate:
    def test_service_time_throttles_throughput(self):
        from repro.core import DynaStarSystem, SystemConfig
        from repro.sim import ConstantLatency
        from repro.smr import KeyValueApp

        app = KeyValueApp({"x": 0})
        system = DynaStarSystem(
            app,
            SystemConfig(
                n_partitions=1,
                seed=1,
                latency=ConstantLatency(0.0001),
                service_time=0.01,  # 100 cmds/sec ceiling
            ),
        )
        from repro.core.client import CallbackWorkload

        def gen(client):
            return Command(
                f"{client.name}:{client.completed}", "read", ("x",)
            )

        for i in range(8):
            system.add_client(CallbackWorkload(gen), stop_at=5.0)
        system.run(until=5.0)
        completed = system.total_completed()
        assert completed <= 5.0 / 0.01 + 16  # ceiling plus boundary slack
        assert completed > 300  # and the gate is not starving the server

    def test_zero_service_time_unthrottled(self):
        system = build_system(n_keys=2, n_partitions=1)
        cmds = [Command(f"c:{i}", "read", ("k0",)) for i in range(50)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=10.0)
        assert client.completed == 50


class TestPlanTransferPlumbing:
    def test_duplicate_plan_transfers_ignored(self):
        from repro.core.messages import PlanTransfer

        system = build_system(n_keys=4, n_partitions=2)
        server = system.servers("p0")[0]
        server.version = 1
        server.owned_nodes.add("newnode")
        server.in_transit.add("newnode")
        msg = PlanTransfer(1, "newnode", "p1", (("newnode", 42),))
        server._on_plan_transfer(msg)
        assert "newnode" in server.store
        server.store.put("newnode", 99)
        server._on_plan_transfer(msg)  # duplicate must not overwrite
        assert server.store.get("newnode") == 99

    def test_early_plan_transfer_buffered_until_plan(self):
        from repro.core.messages import PartitionPlan, PlanTransfer

        system = build_system(n_keys=4, n_partitions=2)
        server = system.servers("p0")[0]
        future = PlanTransfer(5, "k_future", "p1", (("k_future", 7),))
        server._on_plan_transfer(future)
        assert "k_future" not in server.store
        plan = PartitionPlan(
            5, tuple(sorted(
                {**{n: p for n, p in server.last_plan.items()},
                 "k_future": "p0"}.items(), key=repr))
        )
        server.queue.append(plan)
        server._pump()
        assert server.store.get("k_future") == 7
        assert "k_future" not in server.in_transit

    def test_stale_transfer_forwarded_to_new_owner(self):
        from repro.core.messages import PlanTransfer

        system = build_system(n_keys=4, n_partitions=2)
        server = system.servers("p0")[0]
        server.version = 3
        server.last_plan["wanderer"] = "p1"
        msg = PlanTransfer(2, "wanderer", "p1", (("wanderer", 1),))
        before = system.net.messages_sent
        server._on_plan_transfer(msg)
        # forwarded to p1's replicas (2 sends)
        assert system.net.messages_sent == before + 2
