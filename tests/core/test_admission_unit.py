"""Unit tests for the overload-robustness primitives.

Covers the admission controller's priority-aware shedding and TTL sweep,
the token bucket's rate invariant (with a hypothesis property test when
hypothesis is installed), the retry budget, the circuit breaker's state
machine, and eager ValueError validation of every knob.
"""

import random

import pytest

from repro.core.admission import (
    ADMIT,
    BUSY,
    SHED,
    AdmissionController,
    CircuitBreaker,
    RetryBudget,
    TokenBucket,
)


# -- AdmissionController ------------------------------------------------------


def test_admission_bound_and_priority_headroom():
    ac = AdmissionController(bound=2, headroom=1)
    assert ac.offer("a", 0.0) == ADMIT
    assert ac.offer("b", 0.0) == ADMIT
    # Depth == bound: singles are shed (headroom still free for priority).
    assert ac.offer("c", 0.0) == SHED
    # Priority traffic uses the reserved headroom slot ...
    assert ac.offer("m1", 0.0, priority=True) == ADMIT
    # ... and once that is gone, everything is refused BUSY outright.
    assert ac.offer("m2", 0.0, priority=True) == BUSY
    assert ac.offer("d", 0.0) == BUSY
    assert ac.depth == 3


def test_admission_readmits_held_uid_and_releases():
    ac = AdmissionController(bound=1, headroom=0)
    assert ac.offer("a", 0.0) == ADMIT
    # A retransmission of an already-admitted command passes the gate.
    assert ac.offer("a", 1.0) == ADMIT
    assert ac.depth == 1
    assert ac.offer("b", 1.0) == BUSY
    ac.release("a")
    assert not ac.holds("a")
    assert ac.offer("b", 1.0) == ADMIT


def test_admission_ttl_expires_leaked_slots():
    ac = AdmissionController(bound=1, headroom=0, ttl=5.0)
    assert ac.offer("leaked", 0.0) == ADMIT
    assert ac.offer("b", 4.0) == BUSY  # still within TTL: gate held shut
    assert ac.offer("b", 6.0) == ADMIT  # sweep reclaimed the leaked slot
    assert not ac.holds("leaked")


def test_admission_default_headroom_is_quarter_of_bound():
    assert AdmissionController(bound=8).headroom == 2
    assert AdmissionController(bound=1).headroom == 1  # floor of one slot


@pytest.mark.parametrize(
    "kwargs",
    [
        {"bound": 0},
        {"bound": -1},
        {"bound": 2.5},
        {"bound": 4, "headroom": -1},
        {"bound": 4, "retry_after": 0.0},
        {"bound": 4, "ttl": 0.0},
    ],
)
def test_admission_knob_validation(kwargs):
    with pytest.raises(ValueError):
        AdmissionController(**kwargs)


# -- TokenBucket --------------------------------------------------------------


def test_token_bucket_burst_then_paced():
    tb = TokenBucket(rate=10.0, burst=2.0)
    assert tb.reserve(0.0) == 0.0
    assert tb.reserve(0.0) == 0.0
    # Bucket empty: the third grant waits one token-interval.
    wait = tb.reserve(0.0)
    assert wait == pytest.approx(0.1)
    # Back-to-back reservations queue up behind the pre-charged token.
    assert tb.reserve(0.0) == pytest.approx(0.2)


def test_token_bucket_refills_to_burst_cap():
    tb = TokenBucket(rate=1.0, burst=3.0)
    for _ in range(3):
        assert tb.reserve(0.0) == 0.0
    # A long idle period refills to burst, not beyond.
    assert tb.available(100.0) == pytest.approx(3.0)


def test_token_bucket_rate_invariant_simple():
    # Grants over any window never exceed burst + rate * elapsed.
    tb = TokenBucket(rate=5.0, burst=4.0)
    granted = sum(1 for _ in range(50) if tb.reserve(1.0) == 0.0)
    assert granted <= 4.0 + 5.0 * 1.0


@pytest.mark.parametrize("kwargs", [{"rate": 0.0}, {"rate": -1.0}, {"rate": 1.0, "burst": 0.5}])
def test_token_bucket_validation(kwargs):
    with pytest.raises(ValueError):
        TokenBucket(**kwargs)


def test_token_bucket_rate_property():
    hypothesis = pytest.importorskip("hypothesis")
    st = pytest.importorskip("hypothesis.strategies")

    @hypothesis.given(
        rate=st.floats(min_value=0.1, max_value=100.0,
                       allow_nan=False, allow_infinity=False),
        burst=st.floats(min_value=1.0, max_value=20.0,
                        allow_nan=False, allow_infinity=False),
        steps=st.lists(
            st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        ),
    )
    def never_exceeds_rate(rate, burst, steps):
        tb = TokenBucket(rate=rate, burst=burst)
        now, granted = 0.0, 0
        for dt in steps:
            now += dt
            if tb.reserve(now) == 0.0:
                granted += 1
        # Immediate (zero-wait) grants over [0, now] are bounded by the
        # initial burst plus tokens accrued since; the epsilon absorbs
        # float accumulation across hundreds of refills.
        assert granted <= burst + rate * now + 1e-6

    never_exceeds_rate()


# -- RetryBudget --------------------------------------------------------------


def test_retry_budget_exhausts_and_refills_with_fresh_work():
    rb = RetryBudget(initial=2.0, ratio=0.5)
    assert rb.withdraw()
    assert rb.withdraw()
    assert not rb.can_retry()
    assert not rb.withdraw()
    # Two fresh requests earn one retry token back.
    rb.deposit()
    rb.deposit()
    assert rb.can_retry()
    assert rb.withdraw()


def test_retry_budget_caps_balance():
    rb = RetryBudget(initial=1.0, ratio=1.0, cap=2.0)
    for _ in range(10):
        rb.deposit()
    assert rb.balance == pytest.approx(2.0)


@pytest.mark.parametrize(
    "kwargs",
    [{"initial": -1.0}, {"ratio": -0.1}, {"initial": 5.0, "cap": 0.0}],
)
def test_retry_budget_validation(kwargs):
    with pytest.raises(ValueError):
        RetryBudget(**kwargs)


# -- CircuitBreaker -----------------------------------------------------------


def test_breaker_trips_after_consecutive_failures():
    cb = CircuitBreaker(threshold=3, cooldown=1.0)
    assert cb.record_failure() is None
    assert cb.record_failure() is None
    assert cb.record_failure() == pytest.approx(1.0)
    assert cb.is_open
    assert cb.trips == 1


def test_breaker_success_resets_consecutive_count():
    cb = CircuitBreaker(threshold=2, cooldown=1.0)
    cb.record_failure()
    cb.record_success()
    assert cb.record_failure() is None  # streak restarted
    assert not cb.is_open


def test_breaker_half_open_probe_failure_doubles_cooldown():
    cb = CircuitBreaker(threshold=1, cooldown=1.0, max_cooldown=3.0)
    assert cb.record_failure() == pytest.approx(1.0)
    cb.half_open()
    assert cb.state == CircuitBreaker.HALF_OPEN
    assert cb.record_failure() == pytest.approx(2.0)
    cb.half_open()
    assert cb.record_failure() == pytest.approx(3.0)  # capped
    cb.half_open()
    cb.record_success()
    assert cb.state == CircuitBreaker.CLOSED
    # A fresh trip starts from the base cooldown again.
    assert cb.record_failure() == pytest.approx(1.0)


def test_breaker_jitter_is_seeded_and_bounded():
    delays = []
    for _ in range(2):
        cb = CircuitBreaker(threshold=1, cooldown=1.0, jitter=0.5,
                            rng=random.Random(42))
        delays.append(cb.record_failure())
    assert delays[0] == delays[1]  # same seed, same stretch
    assert 1.0 <= delays[0] <= 1.5


@pytest.mark.parametrize(
    "kwargs",
    [
        {"threshold": 0, "cooldown": 1.0},
        {"threshold": 1.5, "cooldown": 1.0},
        {"threshold": 1, "cooldown": 0.0},
        {"threshold": 1, "cooldown": 2.0, "max_cooldown": 1.0},
        {"threshold": 1, "cooldown": 1.0, "jitter": 1.0},
        {"threshold": 1, "cooldown": 1.0, "jitter": -0.1},
    ],
)
def test_breaker_validation(kwargs):
    with pytest.raises(ValueError):
        CircuitBreaker(**kwargs)
