"""Focused unit tests for oracle internals: target selection, plan label
alignment, hysteresis, and the workload-graph bookkeeping."""

import pytest

from repro.core.client import ScriptedWorkload
from repro.smr import Command

from tests.core.conftest import build_system


def oracle_of(system):
    return system.oracle_replicas()[0]


class TestChooseTarget:
    def test_majority_partition_wins(self):
        oracle = oracle_of(build_system())
        locations = (("a", "p1"), ("b", "p1"), ("c", "p0"))
        assert oracle.choose_target(locations) == "p1"

    def test_tie_broken_by_smallest_name(self):
        oracle = oracle_of(build_system())
        locations = (("a", "p1"), ("b", "p0"))
        assert oracle.choose_target(locations) == "p0"

    def test_first_policy(self):
        oracle = oracle_of(build_system())
        oracle.target_policy = "first"
        locations = (("a", "p1"), ("b", "p1"), ("c", "p0"))
        assert oracle.choose_target(locations) == "p0"

    def test_hash_policy_deterministic(self):
        oracle = oracle_of(build_system())
        oracle.target_policy = "hash"
        locations = (("a", "p1"), ("b", "p0"))
        assert oracle.choose_target(locations) == oracle.choose_target(locations)

    def test_spread_policy_fans_out_ties(self):
        oracle = oracle_of(build_system())
        oracle.target_policy = "spread"
        locations = (("a", "p1"), ("b", "p0"))
        targets = {
            oracle.choose_target(locations, uid=f"c:{i}") for i in range(32)
        }
        # Tied candidates both get traffic across distinct uids.
        assert targets == {"p0", "p1"}

    def test_spread_policy_respects_majority(self):
        oracle = oracle_of(build_system())
        oracle.target_policy = "spread"
        locations = (("a", "p1"), ("b", "p1"), ("c", "p0"))
        for i in range(8):
            assert oracle.choose_target(locations, uid=f"c:{i}") == "p1"

    def test_spread_policy_deterministic_across_replicas(self):
        from repro.core import SystemConfig
        from repro.core.system import DynaStarSystem
        from repro.sim import ConstantLatency
        from repro.smr import KeyValueApp

        system = DynaStarSystem(
            KeyValueApp({f"k{i}": i for i in range(8)}),
            SystemConfig(
                n_partitions=2,
                seed=3,
                latency=ConstantLatency(0.001),
                target_policy="spread",
            ),
        )
        replicas = system.oracle_replicas()
        assert len(replicas) >= 2
        locations = (("a", "p1"), ("b", "p0"))
        for i in range(16):
            picks = {
                r.choose_target(locations, uid=f"c:{i}", attempt=i % 3)
                for r in replicas
            }
            assert len(picks) == 1  # every replica routes identically

    def test_invalid_policy_rejected(self):
        from repro.core import SystemConfig
        from repro.core.system import DynaStarSystem
        from repro.smr import KeyValueApp

        with pytest.raises(ValueError):
            DynaStarSystem(
                KeyValueApp({"x": 0}),
                SystemConfig(n_partitions=1, target_policy="bogus"),
            )


class TestPlanLabelAlignment:
    def test_identical_partition_keeps_labels(self):
        system = build_system(n_keys=8, n_partitions=2)
        oracle = oracle_of(system)
        # raw assignment reproducing the current map with flipped indices
        current = dict(oracle.location)
        index_of = {"p0": 1, "p1": 0}  # deliberately swapped
        raw = {node: index_of[part] for node, part in current.items()}
        aligned = oracle._align_plan_labels(raw)
        assert aligned == current  # zero moves despite the relabeling

    def test_partial_overlap_alignment(self):
        system = build_system(n_keys=8, n_partitions=2)
        oracle = oracle_of(system)
        current = dict(oracle.location)
        nodes = sorted(current)
        # new plan: same as current except one node switches sides
        index_of = {"p0": 0, "p1": 1}
        raw = {node: index_of[current[node]] for node in nodes}
        raw[nodes[0]] = 1 - raw[nodes[0]]
        aligned = oracle._align_plan_labels(raw)
        moves = sum(1 for n in nodes if aligned[n] != current[n])
        assert moves == 1

    def test_all_indices_get_labels(self):
        system = build_system(n_keys=8, n_partitions=4)
        oracle = oracle_of(system)
        raw = {node: i % 4 for i, node in enumerate(sorted(oracle.location))}
        aligned = oracle._align_plan_labels(raw)
        assert set(aligned.values()) <= set(system.partition_names)


class TestHysteresis:
    def test_no_plan_published_when_already_optimal(self):
        """A converged system should not keep publishing no-op plans."""
        system = build_system(
            n_keys=16, n_partitions=2, repartition=True, threshold=200
        )
        cmds = [
            Command(f"c:{i}", "transfer", (f"k{2 * (i % 8)}", f"k{2 * (i % 8) + 1}", 1))
            for i in range(400)
        ]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=120.0)
        assert client.completed == 400
        # converged after at most a few plans despite the tiny threshold
        assert oracle_of(system).version <= 4


class TestWorkloadGraphBookkeeping:
    def test_hints_populate_graph(self):
        system = build_system(n_keys=8, n_partitions=2, repartition=True,
                              threshold=10**9)
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "sum", ("k0", "k1"))])
        )
        system.run(until=10.0)
        oracle = oracle_of(system)
        assert oracle.graph.has_edge("k0", "k1")
        assert oracle.graph.vertex_weight("k0") >= 1

    def test_hints_for_unknown_nodes_ignored(self):
        from repro.core.messages import ExecutionHint
        from repro.multicast.messages import MulticastMessage

        system = build_system(n_keys=4, n_partitions=2)
        oracle = oracle_of(system)
        hint = ExecutionHint("p0", 0, (("ghost", 5.0),), (("ghost", "k0", 1.0),))
        oracle.adeliver(MulticastMessage("h", ("oracle",), hint))
        assert "ghost" not in oracle.graph

    def test_delete_removes_node_from_graph_and_map(self):
        from repro.smr.command import CommandKind

        system = build_system(n_keys=4, n_partitions=2)
        client = system.add_client(
            ScriptedWorkload(
                [Command("c:0", "delete", ("k0",), kind=CommandKind.DELETE)]
            )
        )
        system.run(until=10.0)
        oracle = oracle_of(system)
        assert "k0" not in oracle.location
        assert "k0" not in oracle.graph
