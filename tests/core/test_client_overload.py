"""Client-side overload behaviour: terminal give-up, backpressure
retries, retry budgets, and the circuit breaker — end to end against a
real simulated deployment.
"""

import pytest

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import ScriptedWorkload, Workload
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp
from repro.smr.command import ReplyStatus

from tests.core.conftest import assert_replicas_agree, kv_app


class RecordingWorkload(ScriptedWorkload):
    """Scripted workload that records terminal failures."""

    def __init__(self, commands):
        super().__init__(commands)
        self.failures = []

    def on_command_failed(self, client, command, reason):
        self.failures.append((command.uid, reason))


def overload_system(**config_kwargs):
    config = SystemConfig(
        n_partitions=2,
        seed=5,
        latency=ConstantLatency(0.001),
        repartition_enabled=False,
        **config_kwargs,
    )
    return DynaStarSystem(kv_app(), config)


def crash_all_partitions(system):
    for partition in system.partition_names:
        for replica in system.servers(partition):
            replica.crash()


def recover_all_partitions(system):
    for partition in system.partition_names:
        for replica in system.servers(partition):
            replica.recover()


class TestGiveUp:
    def test_exhausted_attempts_surface_as_terminal_failure(self):
        # Partitions are dead the whole run: every attempt times out and
        # the client must give up, tell the workload, and move on.
        system = overload_system(client_timeout=0.1)
        workload = RecordingWorkload(
            [Command("g:0", "read", ("k0",)), Command("g:1", "read", ("k1",))]
        )
        client = system.add_client(workload, max_attempts=3)
        system.start()
        crash_all_partitions(system)
        system.run(until=30.0)

        assert client.done, "give-up must unblock the client"
        assert client.gave_up == 2
        assert workload.failures == [
            ("g:0", "timed out"),
            ("g:1", "timed out"),
        ]
        for uid in ("g:0", "g:1"):
            status, result = client.results[uid]
            assert status == ReplyStatus.NOK
        assert system.monitor.labeled_counters("client")["gave_up"] == 2

    def test_retry_budget_exhaustion_gives_up_early(self):
        # Budget of 1: the first command spends the only retry token and
        # gives up on the second timeout, well before max_attempts.
        system = overload_system(
            client_timeout=0.1,
            client_retry_budget=1.0,
            client_retry_budget_ratio=0.0,
        )
        workload = RecordingWorkload([Command("b:0", "read", ("k0",))])
        client = system.add_client(workload, max_attempts=50)
        system.start()
        crash_all_partitions(system)
        system.run(until=30.0)

        assert workload.failures == [("b:0", "retry budget exhausted")]
        assert client.timeouts == 2  # initial attempt + the one retry
        assert client.gave_up == 1


class TestBackpressure:
    def build_saturated(self, n_clients=4, **extra):
        # bound=1 with no headroom on busy partitions: concurrent
        # clients are refused with ServerBusy and must back off.
        system = overload_system(
            service_time=0.02,
            client_timeout=0.5,
            admission_bound=1,
            admission_headroom=0,
            admission_retry_after=0.01,
            **extra,
        )
        clients = []
        for c in range(n_clients):
            cmds = [
                Command(f"c{c}:{i}", "write", ("k0", c * 100 + i))
                for i in range(5)
            ]
            clients.append(system.add_client(ScriptedWorkload(cmds)))
        return system, clients

    def test_busy_replies_are_retried_to_completion(self):
        system, clients = self.build_saturated()
        system.run(until=60.0)

        assert all(c.done for c in clients)
        assert all(c.completed == 5 for c in clients)
        assert sum(c.gave_up for c in clients) == 0
        # The overload was real and visible: clients saw backpressure,
        # servers counted their refusals under labeled admission metrics.
        assert sum(c.busy_rejections for c in clients) > 0
        admission = system.monitor.labeled_counters("admission")
        refusals = {
            key: value
            for key, value in admission.items()
            if isinstance(key, tuple) and key[0] in ("busy", "shed")
        }
        assert sum(refusals.values()) > 0
        assert_replicas_agree(system)

    def test_acked_commands_execute_exactly_once_under_shedding(self):
        system, clients = self.build_saturated()
        system.run(until=60.0)
        # k0 saw every write; the survivor value must be one of the
        # written values and replicas must agree (no double-execution
        # would be visible as a counter skew for transfer ops; writes
        # assert via full replica-state equality instead).
        written = {c * 100 + i for c in range(4) for i in range(5)}
        merged = system.all_store_variables()
        assert merged["k0"] in written
        assert_replicas_agree(system)


class TestCircuitBreaker:
    def test_breaker_trips_then_recovers_after_outage(self):
        system = overload_system(
            client_timeout=0.1,
            client_timeout_cap=0.2,
            client_breaker_threshold=2,
            client_breaker_cooldown=0.5,
        )
        workload = RecordingWorkload([Command("cb:0", "read", ("k0",))])
        client = system.add_client(workload, max_attempts=100)
        system.start()
        crash_all_partitions(system)
        # Long enough for threshold timeouts + several breaker windows.
        system.run(until=3.0)
        assert client.breaker.trips >= 1
        trips = system.monitor.labeled_counters("admission")["breaker_trip"]
        assert trips == client.breaker.trips
        assert not client.done  # still holding the command, not giving up

        recover_all_partitions(system)
        system.run(until=30.0)
        assert client.done
        status, result = client.results["cb:0"]
        assert status == ReplyStatus.OK
        assert client.gave_up == 0

    def test_open_breaker_stops_issuing(self):
        system = overload_system(
            client_timeout=0.1,
            client_timeout_cap=0.1,
            client_breaker_threshold=1,
            client_breaker_cooldown=10.0,
        )
        client = system.add_client(
            RecordingWorkload([Command("ob:0", "read", ("k0",))]),
            max_attempts=100,
        )
        system.start()
        crash_all_partitions(system)
        system.run(until=5.0)
        # One timeout trips the breaker; with a 10s cooldown the client
        # sits quiet instead of hammering the dead partition.
        assert client.breaker.is_open
        assert client.timeouts <= 2


class TestKnobValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"client_rate_limit": 0.0},
            {"client_rate_limit": 5.0, "client_rate_burst": 0.0},
            {"client_retry_budget": -1.0},
            {"client_breaker_threshold": 0},
            {"client_breaker_threshold": 2, "client_breaker_cooldown": 0.0},
            {"client_breaker_threshold": 2, "client_breaker_jitter": 1.5},
            {"client_think_time": 0.0},
        ],
    )
    def test_bad_client_knobs_fail_at_build_time(self, kwargs):
        system = overload_system(**kwargs)
        with pytest.raises(ValueError):
            system.add_client(ScriptedWorkload([Command("v:0", "read", ("k0",))]))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"admission_bound": 0},
            {"admission_bound": 4, "admission_headroom": -1},
            {"admission_bound": 4, "admission_retry_after": 0.0},
            {"admission_bound": 4, "admission_ttl": -1.0},
            {"oracle_admission_bound": -2},
        ],
    )
    def test_bad_server_knobs_fail_at_build_time(self, kwargs):
        with pytest.raises(ValueError):
            overload_system(**kwargs)

    def test_workload_hook_default_is_noop(self):
        # The base Workload class must tolerate drivers that never
        # override the failure hook.
        Workload().on_command_failed(None, Command("x", "read", ("k0",)), "r")
