"""The optimized protocol (client cache, §4.3) and the base protocol
(every command through the oracle, Algorithms 1-2) must produce the same
application results — the optimization changes routing, not semantics."""

import random

import pytest

from repro.core.client import ScriptedWorkload
from repro.smr import Command
from repro.smr.command import ReplyStatus

from tests.core.conftest import build_system


def random_script(seed, n_keys, count):
    rng = random.Random(seed)
    cmds = []
    for i in range(count):
        kind = rng.choice(["read", "sum", "transfer"])
        if kind == "read":
            cmds.append(Command(f"c:{i}", "read", (f"k{rng.randrange(n_keys)}",)))
        elif kind == "sum":
            a, b = rng.sample(range(n_keys), 2)
            cmds.append(Command(f"c:{i}", "sum", (f"k{a}", f"k{b}")))
        else:
            a, b = rng.sample(range(n_keys), 2)
            cmds.append(Command(f"c:{i}", "transfer", (f"k{a}", f"k{b}", 1)))
    return cmds


def run_mode(oracle_dispatch, seed=5, count=30):
    system = build_system(
        n_keys=10, n_partitions=3, seed=seed, oracle_dispatch=oracle_dispatch
    )
    client = system.add_client(ScriptedWorkload(random_script(seed, 10, count)))
    system.run(until=60.0)
    assert client.completed == count
    return {
        uid: result
        for uid, (status, result) in client.results.items()
        if status == ReplyStatus.OK
    }


class TestProtocolParity:
    @pytest.mark.parametrize("seed", [1, 5, 12])
    def test_same_results_with_and_without_cache(self, seed):
        cached = run_mode(False, seed=seed)
        via_oracle = run_mode(True, seed=seed)
        assert cached == via_oracle

    def test_oracle_traffic_differs(self):
        system_cached = build_system(n_keys=10, n_partitions=2, seed=4)
        c1 = system_cached.add_client(
            ScriptedWorkload(random_script(4, 10, 20))
        )
        system_cached.run(until=60.0)

        system_oracle = build_system(
            n_keys=10, n_partitions=2, seed=4, oracle_dispatch=True
        )
        c2 = system_oracle.add_client(
            ScriptedWorkload(random_script(4, 10, 20))
        )
        system_oracle.run(until=60.0)

        assert c1.completed == c2.completed == 20
        cached_q = system_cached.monitor.counters()["oracle_queries_total"]
        oracle_q = system_oracle.monitor.counters()["oracle_queries_total"]
        assert oracle_q == 20
        assert cached_q < oracle_q
