"""The dependency-aware parallel executor (``execution_lanes > 1``).

Three guarantees under test:

1. ``execution_lanes=1`` is *byte-identical* to the pre-lanes executor —
   same events, messages, stores, results for the same seed;
2. with lanes enabled, an independent command bypasses a head-of-line
   command stalled on in-transit borrowed variables, while conflicting
   commands retain log order (histories stay linearizable, replicas
   agree);
3. ownership-changing payloads (repartition plans et al.) act as
   barriers, so relocation under lanes stays deterministic and correct.
"""

import pytest

from repro.core import SystemConfig
from repro.core.client import ScriptedWorkload
from repro.smr import Command, History, check_linearizable

from tests.core.conftest import assert_replicas_agree, build_system, kv_app


def mixed_scripts(n_clients=3, n_cmds=10, n_keys=8):
    scripts = []
    for c in range(n_clients):
        cmds = []
        for i in range(n_cmds):
            k = (c * 3 + i) % n_keys
            if i % 3 == 0:
                cmds.append(Command(f"c{c}:{i}", "write", (f"k{k}", c * 100 + i)))
            elif i % 3 == 1:
                cmds.append(Command(f"c{c}:{i}", "read", (f"k{k}",)))
            else:
                cmds.append(
                    Command(
                        f"c{c}:{i}",
                        "transfer",
                        (f"k{k}", f"k{(k + 1) % n_keys}", 1),
                    )
                )
        scripts.append(cmds)
    return scripts


def fingerprint(system, scripts, until=60.0):
    clients = [system.add_client(ScriptedWorkload(cmds)) for cmds in scripts]
    system.run(until=until)
    return {
        "results": [dict(c.results) for c in clients],
        "completed": [c.completed for c in clients],
        "events": system.sim.events_processed,
        "messages": system.net.messages_sent,
        "stores": {
            p: tuple(sorted(system.servers(p)[0].store.items()))
            for p in system.partition_names
        },
    }


class TestConfig:
    def test_zero_lanes_rejected(self):
        from repro.core import DynaStarSystem

        with pytest.raises(ValueError):
            DynaStarSystem(
                kv_app(), SystemConfig(n_partitions=2, execution_lanes=0)
            )


class TestSerialEquivalence:
    def test_lanes1_is_byte_identical_to_default(self):
        """``execution_lanes=1`` must take the legacy code path exactly:
        the knob's mere presence cannot perturb a serial run."""
        scripts = mixed_scripts()
        base = fingerprint(
            build_system(n_keys=8, n_partitions=2, seed=9, service_time=0.001),
            scripts,
        )
        explicit = fingerprint(
            build_system(
                n_keys=8,
                n_partitions=2,
                seed=9,
                service_time=0.001,
                execution_lanes=1,
            ),
            scripts,
        )
        assert base == explicit

    def test_lanes_run_is_deterministic(self):
        scripts = mixed_scripts()

        def run():
            return fingerprint(
                build_system(
                    n_keys=8,
                    n_partitions=2,
                    seed=9,
                    service_time=0.001,
                    execution_lanes=4,
                ),
                scripts,
            )

        assert run() == run()


class TestParallelExecution:
    def test_lanes_linearizable_with_service_time(self):
        system = build_system(
            n_keys=8,
            n_partitions=2,
            seed=7,
            service_time=0.002,
            execution_lanes=4,
        )
        history = History()
        scripts = mixed_scripts()
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in scripts
        ]
        system.run(until=60.0)
        for client, cmds in zip(clients, scripts):
            assert client.completed + client.failed == len(cmds)
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)

    @staticmethod
    def _bypass_counts(execution_lanes):
        """One cross-partition transfer (stalls on the borrowed k2) racing
        a stream of independent writes to k1; returns how many writes
        returned before the transfer did."""
        system = build_system(
            n_keys=3,
            n_partitions=2,
            seed=5,
            placement={"k0": 0, "k1": 0, "k2": 1},
            execution_lanes=execution_lanes,
        )
        history = History()
        transfer = Command("t:0", "transfer", ("k0", "k2", 1))
        writes = [Command(f"w:{i}", "write", ("k1", i)) for i in range(12)]
        a = system.add_client(ScriptedWorkload([transfer]), history=history)
        b = system.add_client(ScriptedWorkload(writes), history=history)
        system.run(until=30.0)
        assert a.completed == 1 and b.completed == len(writes)
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)
        ops = {op.command.uid: op for op in history.operations}
        transfer_returned = ops["t:0"].returned_at
        return sum(
            1
            for w in writes
            if ops[w.uid].returned_at < transfer_returned
        )

    def test_independent_writes_bypass_stalled_transfer(self):
        serial = self._bypass_counts(execution_lanes=1)
        lanes = self._bypass_counts(execution_lanes=4)
        assert lanes > serial, (
            f"expected lanes to let independent writes pass the stalled "
            f"transfer (serial={serial}, lanes={lanes})"
        )

    def test_conflicting_writes_keep_log_order(self):
        """Two clients hammer the same key: every interleaving the lane
        scheduler picks must still be linearizable and replica-identical."""
        system = build_system(
            n_keys=2,
            n_partitions=1,
            seed=3,
            service_time=0.002,
            execution_lanes=4,
        )
        history = History()
        scripts = [
            [Command(f"c{c}:{i}", "write", ("k0", c * 100 + i)) for i in range(8)]
            for c in range(2)
        ]
        clients = [
            system.add_client(ScriptedWorkload(cmds), history=history)
            for cmds in scripts
        ]
        system.run(until=30.0)
        assert all(c.completed == 8 for c in clients)
        assert check_linearizable(history, system.app)
        assert_replicas_agree(system)


class TestRelocationBarrier:
    def test_repartition_under_lanes_deterministic_and_consistent(self):
        """PartitionPlan payloads are barriers: relocation in the middle
        of parallel execution keeps runs deterministic and replicas in
        agreement."""

        def run():
            system = build_system(
                n_keys=16,
                n_partitions=3,
                seed=7,
                repartition=True,
                threshold=150,
                service_time=0.001,
                execution_lanes=4,
            )
            cmds = [
                Command(
                    f"c:{i}",
                    "transfer",
                    (f"k{2 * (i % 8)}", f"k{2 * (i % 8) + 1}", 1),
                )
                for i in range(120)
            ]
            client = system.add_client(ScriptedWorkload(cmds))
            system.run(until=90.0)
            assert client.completed + client.failed == 120
            assert_replicas_agree(system)
            return {
                "results": dict(client.results),
                "events": system.sim.events_processed,
                "stores": {
                    p: tuple(sorted(system.servers(p)[0].store.items()))
                    for p in system.partition_names
                },
            }

        assert run() == run()
