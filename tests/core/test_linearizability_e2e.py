"""End-to-end linearizability: run concurrent clients against a DynaStar
deployment (including across repartitioning) and check the observed
history against the sequential specification."""

import random

import pytest

from repro.core.client import ScriptedWorkload
from repro.smr import Command, History, KeyValueApp, check_linearizable

from tests.core.conftest import build_system


def run_with_history(system, scripts, until=60.0):
    history = History()
    clients = [
        system.add_client(ScriptedWorkload(cmds), history=history)
        for cmds in scripts
    ]
    system.run(until=until)
    for client in clients:
        assert client.done, f"{client.name} did not finish"
    return history


class TestLinearizableExecutions:
    def test_single_partition_reads_writes(self):
        system = build_system(n_keys=4, n_partitions=2)
        scripts = [
            [Command(f"a:{i}", "write", ("k0", i)) for i in range(5)],
            [Command(f"b:{i}", "read", ("k0",)) for i in range(5)],
        ]
        history = run_with_history(system, scripts)
        assert check_linearizable(history, system.app)

    def test_cross_partition_transfers_and_sums(self):
        system = build_system(n_keys=4, n_partitions=2, seed=7)
        loc = system.initial_assignment
        keys = sorted(loc)
        ka = keys[0]
        kb = next((k for k in keys if loc[k] != loc[ka]), keys[1])
        scripts = [
            [Command(f"a:{i}", "transfer", (ka, kb, 1)) for i in range(4)],
            [Command(f"b:{i}", "sum", (ka, kb)) for i in range(4)],
            [Command(f"c:{i}", "read", (ka,)) for i in range(4)],
        ]
        history = run_with_history(system, scripts)
        assert check_linearizable(history, system.app)

    @pytest.mark.parametrize("seed", [1, 2, 9])
    def test_random_mixed_workload(self, seed):
        system = build_system(n_keys=6, n_partitions=3, seed=seed)
        rng = random.Random(seed)
        scripts = []
        for c in range(3):
            cmds = []
            for i in range(6):
                kind = rng.choice(["read", "write", "sum", "transfer"])
                if kind == "read":
                    cmds.append(Command(f"c{c}:{i}", "read", (f"k{rng.randrange(6)}",)))
                elif kind == "write":
                    cmds.append(
                        Command(
                            f"c{c}:{i}", "write", (f"k{rng.randrange(6)}", rng.randrange(100))
                        )
                    )
                elif kind == "sum":
                    a, b = rng.sample(range(6), 2)
                    cmds.append(Command(f"c{c}:{i}", "sum", (f"k{a}", f"k{b}")))
                else:
                    a, b = rng.sample(range(6), 2)
                    cmds.append(
                        Command(f"c{c}:{i}", "transfer", (f"k{a}", f"k{b}", 1))
                    )
            scripts.append(cmds)
        history = run_with_history(system, scripts)
        assert check_linearizable(history, system.app)

    def test_linearizable_across_repartitioning(self):
        system = build_system(
            n_keys=8, n_partitions=2, repartition=True, threshold=60, seed=4
        )
        scripts = []
        for c in range(2):
            cmds = []
            for i in range(25):
                pair = 2 * ((c + i) % 4)
                cmds.append(
                    Command(
                        f"c{c}:{i}", "transfer", (f"k{pair}", f"k{pair + 1}", 1)
                    )
                )
            scripts.append(cmds)
        scripts.append([Command(f"r:{i}", "sum", (f"k{2*(i%4)}", f"k{2*(i%4)+1}")) for i in range(10)])
        history = run_with_history(system, scripts, until=200.0)
        assert system.oracle_replicas()[0].version >= 1, "no plan applied"
        assert check_linearizable(history, system.app)

    def test_linearizable_in_ssmr_mode(self):
        from repro.baselines import SSMRSystem
        from repro.core import SystemConfig
        from repro.sim import ConstantLatency

        app = KeyValueApp({f"k{i}": i for i in range(4)})
        system = SSMRSystem(
            app,
            SystemConfig(
                n_partitions=2, seed=3, latency=ConstantLatency(0.001)
            ),
        )
        scripts = [
            [Command(f"a:{i}", "transfer", ("k0", "k3", 1)) for i in range(4)],
            [Command(f"b:{i}", "sum", ("k0", "k3")) for i in range(4)],
        ]
        history = run_with_history(system, scripts)
        assert check_linearizable(history, system.app)

    def test_linearizable_in_dssmr_mode(self):
        from repro.baselines import DSSMRSystem
        from repro.core import SystemConfig
        from repro.sim import ConstantLatency

        app = KeyValueApp({f"k{i}": i for i in range(4)})
        system = DSSMRSystem(
            app,
            SystemConfig(
                n_partitions=2, seed=3, latency=ConstantLatency(0.001)
            ),
        )
        scripts = [
            [Command(f"a:{i}", "transfer", ("k0", "k3", 1)) for i in range(4)],
            [Command(f"b:{i}", "sum", (("k0"), ("k3"))) for i in range(4)],
        ]
        history = run_with_history(system, scripts)
        assert check_linearizable(history, system.app)
