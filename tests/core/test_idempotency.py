"""Client idempotency keys end to end.

A give-up-and-resubmit of the same logical operation (same ``idem_key``
under a fresh uid) must be answered from the servers' key-indexed
result cache instead of re-executing — exactly-once effects even when
the client could not tell whether its first attempt landed.
"""

from repro.smr import Command
from repro.smr.command import CommandKind

from tests.core.conftest import build_system, ok_results, run_script


def keys_by_partition(system):
    by_part: dict = {}
    for key, part in system.initial_assignment.items():
        by_part.setdefault(part, []).append(key)
    return {part: sorted(keys) for part, keys in by_part.items()}


def same_partition_pair(system):
    keys = max(keys_by_partition(system).values(), key=len)
    assert len(keys) >= 2
    return keys[0], keys[1]


def value_of(key):
    return int(key[1:])  # kv_app initializes k{i} -> i


class TestIdempotencyKeys:
    def test_resubmitted_transfer_executes_once(self):
        system = build_system()
        src, dst = same_partition_pair(system)
        script = [
            Command("c:1", "transfer", (src, dst, 5), idem_key="ik:t1"),
            Command("c:2", "transfer", (src, dst, 5), idem_key="ik:t1"),
            Command("c:3", "read", (src,)),
            Command("c:4", "read", (dst,)),
        ]
        client = run_script(system, script)
        results = ok_results(client)
        # The duplicate is ACKed (from cache), not dropped or failed.
        assert set(results) == {"c:1", "c:2", "c:3", "c:4"}
        assert results["c:3"] == value_of(src) - 5
        assert results["c:4"] == value_of(dst) + 5
        assert results["c:2"] == results["c:1"]

    def test_cross_partition_resubmit_executes_once(self):
        system = build_system()
        parts = keys_by_partition(system)
        assert len(parts) == 2
        (src, *_), (dst, *_) = (parts[p] for p in sorted(parts))
        script = [
            Command("c:1", "transfer", (src, dst, 3), idem_key="ik:x1"),
            Command("c:2", "transfer", (src, dst, 3), idem_key="ik:x1"),
            Command("c:3", "sum", (src, dst)),
            Command("c:4", "read", (src,)),
        ]
        client = run_script(system, script)
        results = ok_results(client)
        assert set(results) == {"c:1", "c:2", "c:3", "c:4"}
        # Conserved total, and exactly one transfer applied.
        assert results["c:3"] == value_of(src) + value_of(dst)
        assert results["c:4"] == value_of(src) - 3

    def test_stale_resubmit_does_not_clobber_later_writes(self):
        # The duplicate arrives after the state has moved on; the cached
        # original answer is returned and the write is NOT re-applied.
        system = build_system()
        src, _ = same_partition_pair(system)
        script = [
            Command("c:1", "write", (src, 100), idem_key="ik:w1"),
            Command("c:2", "write", (src, 200)),
            Command("c:3", "write", (src, 100), idem_key="ik:w1"),
            Command("c:4", "read", (src,)),
        ]
        client = run_script(system, script)
        results = ok_results(client)
        assert set(results) == {"c:1", "c:2", "c:3", "c:4"}
        assert results["c:4"] == 200
        assert results["c:3"] == results["c:1"]

    def test_create_dedup_at_the_oracle(self):
        # Creates route through the oracle; its idem-key ledger maps the
        # resubmit back to the original uid instead of double-creating.
        system = build_system()
        script = [
            Command("c:1", "create", ("fresh",), kind=CommandKind.CREATE, idem_key="ik:c1"),
            Command("c:2", "create", ("fresh",), kind=CommandKind.CREATE, idem_key="ik:c1"),
            Command("c:3", "read", ("fresh",)),
        ]
        client = run_script(system, script)
        results = ok_results(client)
        assert set(results) == {"c:1", "c:2", "c:3"}
        assert results["c:3"] == 0

    def test_client_flag_stamps_unique_keys(self):
        from repro.core import DynaStarSystem, SystemConfig
        from repro.sim import ConstantLatency
        from repro.smr import KeyValueApp

        system = DynaStarSystem(
            KeyValueApp({f"k{i}": i for i in range(8)}),
            SystemConfig(
                n_partitions=2,
                seed=3,
                latency=ConstantLatency(0.001),
                idempotency_keys=True,
            ),
        )
        src, dst = same_partition_pair(system)
        script = [
            Command("c:1", "transfer", (src, dst, 1)),
            Command("c:2", "transfer", (src, dst, 1)),
            Command("c:3", "read", (dst,)),
        ]
        client = run_script(system, script)
        results = ok_results(client)
        # Distinct logical commands get distinct keys: both transfers
        # really execute.
        assert results["c:3"] == value_of(dst) + 2
