"""End-to-end fault tolerance: replica crashes must not lose commands,
state, or consistency (the system tolerates f < n/2 acceptor failures and
any minority of replicas per group)."""

import pytest

from repro.core.client import ScriptedWorkload
from repro.smr import Command

from tests.core.conftest import build_system, ok_results


class TestServerReplicaCrash:
    def test_partition_leader_crash_mid_workload(self):
        system = build_system(n_keys=8, n_partitions=2, seed=3)
        cmds = [Command(f"c:{i}", "write", ("k0", i)) for i in range(30)]
        cmds.append(Command("c:final", "read", ("k0",)))
        client = system.add_client(ScriptedWorkload(cmds))
        # crash p0's initial leader replica shortly into the run
        part = system.initial_assignment["k0"]
        system.sim.schedule(0.05, system.servers(part)[0].crash)
        system.run(until=60.0)
        assert client.completed == 31
        assert ok_results(client)["c:final"] == 29

    def test_oracle_replica_crash(self):
        system = build_system(n_keys=8, n_partitions=2, seed=3)
        cmds = [Command(f"c:{i}", "read", (f"k{i % 8}",)) for i in range(16)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.sim.schedule(
            0.05, system.directory.groups[system.oracle_group].replicas[0].crash
        )
        system.run(until=60.0)
        assert client.completed == 16

    def test_acceptor_minority_crash_no_disruption(self):
        system = build_system(n_keys=8, n_partitions=2, seed=3)
        part = system.partition_names[0]
        system.sim.schedule(
            0.0, system.partition_group(part).acceptors[0].crash
        )
        cmds = [Command(f"c:{i}", "read", (f"k{i % 8}",)) for i in range(16)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=30.0)
        assert client.completed == 16

    def test_multi_partition_commands_survive_source_leader_crash(self):
        system = build_system(n_keys=8, n_partitions=2, seed=3)
        loc = system.initial_assignment
        keys = sorted(loc)
        ka = keys[0]
        kb = next(k for k in keys if loc[k] != loc[ka])
        cmds = [Command(f"c:{i}", "transfer", (ka, kb, 1)) for i in range(20)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.sim.schedule(0.1, system.servers(loc[kb])[0].crash)
        system.run(until=120.0)
        assert client.completed == 20
        merged = system.all_store_variables()
        assert merged[ka] == int(ka[1:]) - 20
        assert merged[kb] == int(kb[1:]) + 20

    def test_crash_during_repartitioning(self):
        system = build_system(
            n_keys=24, n_partitions=3, repartition=True, threshold=150, seed=6
        )
        cmds = []
        for i in range(120):
            pair = 2 * (i % 12)
            cmds.append(
                Command(f"c:{i}", "transfer", (f"k{pair}", f"k{pair + 1}", 1))
            )
        client = system.add_client(ScriptedWorkload(cmds))
        # crash one replica of p1 while plans will be flying around
        system.sim.schedule(1.0, system.servers("p1")[1].crash)
        system.run(until=240.0)
        assert client.completed == 120
        # no variable lost: survivors of every partition hold a disjoint cover
        seen = {}
        for partition in system.partition_names:
            for server in system.servers(partition):
                if server.crashed:
                    continue
                for var, _ in server.store.items():
                    assert var not in seen, f"{var} in {seen[var]} and {partition}"
                    seen[var] = partition
                break
        assert set(seen) == {f"k{i}" for i in range(24)}
