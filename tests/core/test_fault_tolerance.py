"""End-to-end fault tolerance: replica crashes must not lose commands,
state, or consistency (the system tolerates f < n/2 acceptor failures and
any minority of replicas per group)."""

import pytest

from repro.core.client import ScriptedWorkload
from repro.smr import Command

from tests.core.conftest import build_system, ok_results


class TestServerReplicaCrash:
    def test_partition_leader_crash_mid_workload(self):
        system = build_system(n_keys=8, n_partitions=2, seed=3)
        cmds = [Command(f"c:{i}", "write", ("k0", i)) for i in range(30)]
        cmds.append(Command("c:final", "read", ("k0",)))
        client = system.add_client(ScriptedWorkload(cmds))
        # crash p0's initial leader replica shortly into the run
        part = system.initial_assignment["k0"]
        system.sim.schedule(0.05, system.servers(part)[0].crash)
        system.run(until=60.0)
        assert client.completed == 31
        assert ok_results(client)["c:final"] == 29

    def test_oracle_replica_crash(self):
        system = build_system(n_keys=8, n_partitions=2, seed=3)
        cmds = [Command(f"c:{i}", "read", (f"k{i % 8}",)) for i in range(16)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.sim.schedule(
            0.05, system.directory.groups[system.oracle_group].replicas[0].crash
        )
        system.run(until=60.0)
        assert client.completed == 16

    def test_acceptor_minority_crash_no_disruption(self):
        system = build_system(n_keys=8, n_partitions=2, seed=3)
        part = system.partition_names[0]
        system.sim.schedule(
            0.0, system.partition_group(part).acceptors[0].crash
        )
        cmds = [Command(f"c:{i}", "read", (f"k{i % 8}",)) for i in range(16)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=30.0)
        assert client.completed == 16

    def test_multi_partition_commands_survive_source_leader_crash(self):
        system = build_system(n_keys=8, n_partitions=2, seed=3)
        loc = system.initial_assignment
        keys = sorted(loc)
        ka = keys[0]
        kb = next(k for k in keys if loc[k] != loc[ka])
        cmds = [Command(f"c:{i}", "transfer", (ka, kb, 1)) for i in range(20)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.sim.schedule(0.1, system.servers(loc[kb])[0].crash)
        system.run(until=120.0)
        assert client.completed == 20
        merged = system.all_store_variables()
        assert merged[ka] == int(ka[1:]) - 20
        assert merged[kb] == int(kb[1:]) + 20

    def test_crash_during_repartitioning(self):
        system = build_system(
            n_keys=24, n_partitions=3, repartition=True, threshold=150, seed=6
        )
        cmds = []
        for i in range(120):
            pair = 2 * (i % 12)
            cmds.append(
                Command(f"c:{i}", "transfer", (f"k{pair}", f"k{pair + 1}", 1))
            )
        client = system.add_client(ScriptedWorkload(cmds))
        # crash one replica of p1 while plans will be flying around
        system.sim.schedule(1.0, system.servers("p1")[1].crash)
        system.run(until=240.0)
        assert client.completed == 120
        # no variable lost: survivors of every partition hold a disjoint cover
        seen = {}
        for partition in system.partition_names:
            for server in system.servers(partition):
                if server.crashed:
                    continue
                for var, _ in server.store.items():
                    assert var not in seen, f"{var} in {seen[var]} and {partition}"
                    seen[var] = partition
                break
        assert set(seen) == {f"k{i}" for i in range(24)}


class TestAsymmetricFaults:
    def test_oneway_cut_client_to_partition_recovers_after_heal(self):
        """The client can reach one partition replica only through the
        second replica after a one-way cut; healing restores direct
        traffic.  Progress must continue throughout (uid dedup makes the
        redundant submission paths safe)."""
        from tests.faults.conftest import build_chaos_system

        system = build_chaos_system(
            n_keys=4, n_partitions=2, seed=3,
            client_timeout=0.25, client_timeout_cap=1.0,
        )
        part = system.initial_assignment["k0"]
        rep0 = system.servers(part)[0].name
        cmds = [Command(f"c:{i}", "write", ("k0", i)) for i in range(12)]
        cmds.append(Command("c:final", "read", ("k0",)))
        client = system.add_client(ScriptedWorkload(cmds))
        system.sim.schedule(0.02, system.net.cut_oneway, client.name, rep0)
        system.sim.schedule(2.0, system.net.heal_oneway, client.name, rep0)
        system.run(until=60.0)
        assert client.done
        assert client.completed == 13
        assert ok_results(client)["c:final"] == 11

    def test_oneway_cut_between_replicas_no_disruption(self):
        """An asymmetric cut between a partition replica and an acceptor
        leaves a quorum reachable; commands keep completing."""
        from tests.faults.conftest import build_chaos_system

        system = build_chaos_system(n_keys=4, n_partitions=2, seed=3)
        part = system.partition_names[0]
        rep = system.servers(part)[0].name
        acc = system.partition_group(part).acceptor_names[0]
        system.sim.schedule(0.0, system.net.cut_oneway, rep, acc)
        cmds = [Command(f"c:{i}", "read", (f"k{i % 4}",)) for i in range(12)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=30.0)
        assert client.completed == 12


class TestLossyRuns:
    def test_single_partition_commands_complete_under_loss(self):
        from tests.faults.conftest import build_chaos_system

        system = build_chaos_system(
            n_keys=4, n_partitions=1, seed=13,
            loss_probability=0.05,
            client_timeout=0.2, client_timeout_cap=2.0,
        )
        cmds = [Command(f"c:{i}", "write", ("k0", i)) for i in range(15)]
        cmds.append(Command("c:final", "read", ("k0",)))
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=120.0)
        assert client.done
        assert client.completed == 16
        assert ok_results(client)["c:final"] == 14
        assert system.net.drops_by_reason.get("loss", 0) > 0

    def test_cross_partition_transfers_complete_under_loss(self):
        from tests.faults.conftest import build_chaos_system

        system = build_chaos_system(
            n_keys=4, n_partitions=2, seed=21,
            loss_probability=0.04,
            client_timeout=0.2, client_timeout_cap=2.0,
        )
        loc = system.initial_assignment
        keys = sorted(loc)
        ka = keys[0]
        kb = next((k for k in keys if loc[k] != loc[ka]), keys[1])
        cmds = [Command(f"c:{i}", "transfer", (ka, kb, 1)) for i in range(10)]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=120.0)
        assert client.done
        assert client.completed + client.failed == 10
        merged = system.all_store_variables()
        # exactly-once execution: the transferred total matches the
        # number of OK transfers, and no variable was lost
        done = client.completed
        assert merged[ka] == int(ka[1:]) - done
        assert merged[kb] == int(kb[1:]) + done
