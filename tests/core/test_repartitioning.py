"""Tests for dynamic repartitioning: plan propagation, on-line variable
relocation, cache invalidation, and state conservation."""

import random

import pytest

from repro.core.client import CallbackWorkload, ScriptedWorkload
from repro.smr import Command

from tests.core.conftest import (
    assert_conservation,
    assert_replicas_agree,
    build_system,
)


def paired_workload(system, n_keys, total, seed=1, clients=4):
    """Clients repeatedly transfer between fixed key pairs (k0,k1),
    (k2,k3), ... — the canonical co-access pattern a good partitioner
    must co-locate."""
    rng = random.Random(seed)
    state = {"count": 0}

    def gen(client):
        if state["count"] >= total:
            return None
        state["count"] += 1
        base = 2 * rng.randrange(n_keys // 2)
        return Command(
            f"{client.name}:{state['count']}",
            "transfer",
            (f"k{base}", f"k{base + 1}", 1),
        )

    return [system.add_client(CallbackWorkload(gen)) for _ in range(clients)]


class TestRepartitioningConvergence:
    def test_plan_is_computed_and_applied(self):
        system = build_system(
            n_keys=40, n_partitions=4, repartition=True, threshold=400
        )
        paired_workload(system, 40, total=1500)
        system.run(until=120.0)
        assert system.monitor.counters()["plans_applied"] >= 1
        assert system.oracle_replicas()[0].version >= 1

    def test_pairs_colocated_after_repartitioning(self):
        system = build_system(
            n_keys=40, n_partitions=4, repartition=True, threshold=400
        )
        paired_workload(system, 40, total=1500)
        system.run(until=120.0)
        loc = system.oracle_replicas()[0].location
        colocated = sum(
            1 for i in range(0, 40, 2) if loc[f"k{i}"] == loc[f"k{i + 1}"]
        )
        assert colocated == 20

    def test_state_conserved_across_plans(self):
        system = build_system(
            n_keys=40, n_partitions=4, repartition=True, threshold=400
        )
        clients = paired_workload(system, 40, total=1500)
        system.run(until=120.0)
        assert sum(c.completed for c in clients) == 1500
        assert_conservation(system, [f"k{i}" for i in range(40)])
        merged = system.all_store_variables()
        # transfers conserve the total sum (initial sum = 0+1+...+39)
        assert sum(merged.values()) == sum(range(40))
        assert_replicas_agree(system)

    def test_multi_partition_rate_drops_after_repartitioning(self):
        system = build_system(
            n_keys=40, n_partitions=4, repartition=True, threshold=400
        )
        paired_workload(system, 40, total=3000)
        system.run(until=200.0)
        counters = system.monitor.counters()
        completed = counters["commands_completed"]
        multi = counters["multi_partition_commands"]
        # with all pairs colocated, the tail of the run is single-partition
        assert multi < completed * 0.8

    def test_ownership_matches_oracle_map_at_quiescence(self):
        system = build_system(
            n_keys=40, n_partitions=4, repartition=True, threshold=400
        )
        paired_workload(system, 40, total=1500)
        system.run(until=120.0)
        loc = system.oracle_replicas()[0].location
        for partition in system.partition_names:
            server = system.servers(partition)[0]
            for node in server.owned_nodes:
                assert loc[node] == partition
            assert not server.in_transit

    def test_no_repartition_when_disabled(self):
        system = build_system(
            n_keys=40, n_partitions=4, repartition=False, threshold=400
        )
        paired_workload(system, 40, total=1000)
        system.run(until=120.0)
        assert system.oracle_replicas()[0].version == 0
        assert "plans_applied" not in system.monitor.counters()


class TestStaleCacheRetry:
    def test_client_with_stale_cache_retries_and_succeeds(self):
        system = build_system(
            n_keys=40, n_partitions=4, repartition=True, threshold=300
        )
        # Phase 1: drive repartitioning with one set of clients.
        clients = paired_workload(system, 40, total=1200)
        # Phase 2 client: learns locations early, then issues commands late
        # (after plans changed), forcing retries.
        late_cmds = [Command(f"late:{i}", "read", (f"k{i % 40}",)) for i in range(40)]
        late = system.add_client(ScriptedWorkload(late_cmds))
        system.run(until=300.0)
        assert late.completed == 40
        assert sum(c.completed for c in clients) == 1200

    def test_retries_counted(self):
        system = build_system(
            n_keys=40, n_partitions=4, repartition=True, threshold=300
        )
        paired_workload(system, 40, total=2000)
        system.run(until=200.0)
        # repartitioning must have invalidated some cached locations
        assert system.monitor.counter("client", event="retry").value >= 1


class TestManualRepartition:
    def test_explicit_request_repartition(self):
        system = build_system(
            n_keys=16, n_partitions=2, repartition=False
        )
        cmds = [
            Command(f"c:{i}", "transfer", (f"k{2 * (i % 8)}", f"k{2 * (i % 8) + 1}", 1))
            for i in range(64)
        ]
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=30.0)
        assert client.completed == 64
        oracle0 = system.oracle_replicas()[0]
        # Manually enable and trigger (as an application-requested plan).
        for rep in system.oracle_replicas():
            rep.repartition_enabled = True
        oracle0.request_repartition()
        system.sim.run(until=60.0)
        assert oracle0.version == 1
        loc = oracle0.location
        colocated = sum(
            1 for i in range(0, 16, 2) if loc[f"k{i}"] == loc[f"k{i + 1}"]
        )
        assert colocated == 8
        assert_conservation(system, [f"k{i}" for i in range(16)])
