"""Tests for the client location cache (§4.3): population, hits,
invalidation on retry, and the create/delete paths that bypass it."""

from repro.core.client import ScriptedWorkload
from repro.smr import Command
from repro.smr.command import CommandKind

from tests.core.conftest import build_system


class TestCachePopulation:
    def test_prophecy_fills_cache(self):
        system = build_system()
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "sum", ("k0", "k1"))])
        )
        system.run(until=10.0)
        assert client.cache.get("k0") == system.initial_assignment["k0"]
        assert client.cache.get("k1") == system.initial_assignment["k1"]

    def test_cache_hit_skips_oracle(self):
        system = build_system()
        client = system.add_client(
            ScriptedWorkload(
                [
                    Command("c:0", "sum", ("k0", "k1")),
                    Command("c:1", "sum", ("k0", "k1")),
                    Command("c:2", "read", ("k1",)),
                ]
            )
        )
        system.run(until=20.0)
        assert client.completed == 3
        assert system.monitor.counters()["oracle_queries_total"] == 1

    def test_partial_cache_miss_queries_oracle(self):
        system = build_system()
        client = system.add_client(
            ScriptedWorkload(
                [
                    Command("c:0", "read", ("k0",)),
                    Command("c:1", "sum", ("k0", "k2")),  # k2 unknown
                ]
            )
        )
        system.run(until=20.0)
        assert system.monitor.counters()["oracle_queries_total"] == 2

    def test_cache_disabled_always_queries(self):
        system = build_system()
        client = system.add_client(
            ScriptedWorkload(
                [Command(f"c:{i}", "read", ("k0",)) for i in range(4)]
            ),
            use_cache=False,
        )
        system.run(until=20.0)
        assert client.completed == 4
        assert system.monitor.counters()["oracle_queries_total"] == 4


class TestCacheInvalidation:
    def test_stale_entry_invalidated_on_retry(self):
        system = build_system(n_keys=8, n_partitions=2)
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "read", ("k0",))])
        )
        # Poison the cache before the client starts: the first dispatch
        # goes to the wrong partition, which must answer RETRY.
        real = system.initial_assignment["k0"]
        wrong = next(p for p in system.partition_names if p != real)
        client.cache["k0"] = wrong
        system.run(until=30.0)
        assert client.completed == 1
        assert client.retries >= 1
        assert client.cache["k0"] == real  # refreshed from the oracle

    def test_creates_always_go_to_oracle(self):
        system = build_system()
        client = system.add_client(
            ScriptedWorkload(
                [
                    Command("c:0", "create", ("zz",), kind=CommandKind.CREATE),
                    Command("c:1", "create", ("yy",), kind=CommandKind.CREATE),
                ]
            )
        )
        system.run(until=20.0)
        assert client.completed == 2
        assert system.monitor.counters()["oracle_queries_total"] == 2

    def test_created_variable_cached_for_subsequent_access(self):
        system = build_system()
        client = system.add_client(
            ScriptedWorkload(
                [
                    Command("c:0", "create", ("zz",), kind=CommandKind.CREATE),
                    Command("c:1", "read", ("zz",)),
                ]
            )
        )
        system.run(until=20.0)
        assert client.completed == 2
        # the read used the prophecy's location: only the create queried
        assert system.monitor.counters()["oracle_queries_total"] == 1
