"""Shared fixtures for DynaStar core tests."""

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import CallbackWorkload, ScriptedWorkload
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp


def kv_app(n_keys=8):
    """Keys k0..k{n-1} with initial value = index."""
    return KeyValueApp({f"k{i}": i for i in range(n_keys)})


def build_system(
    n_keys=8,
    n_partitions=2,
    seed=3,
    repartition=False,
    threshold=400,
    mode="dynastar",
    oracle_dispatch=False,
    hint_period=0.5,
    placement="random",
    execution_lanes=1,
    service_time=0.0,
):
    app = kv_app(n_keys)
    config = SystemConfig(
        n_partitions=n_partitions,
        seed=seed,
        latency=ConstantLatency(0.001),
        repartition_enabled=repartition,
        repartition_threshold=threshold,
        hint_period=hint_period,
        mode=mode,
        oracle_dispatch=oracle_dispatch,
        placement=placement,
        execution_lanes=execution_lanes,
        service_time=service_time,
    )
    return DynaStarSystem(app, config)


def run_script(system, commands, until=30.0, **client_kwargs):
    client = system.add_client(ScriptedWorkload(commands), **client_kwargs)
    system.run(until=until)
    return client


def ok_results(client):
    from repro.smr.command import ReplyStatus

    return {
        uid: result
        for uid, (status, result) in client.results.items()
        if status == ReplyStatus.OK
    }


def assert_replicas_agree(system):
    for partition in system.partition_names:
        replicas = system.servers(partition)
        baseline = dict(replicas[0].store.items())
        for replica in replicas[1:]:
            assert dict(replica.store.items()) == baseline, (
                f"replica state divergence in {partition}"
            )
        owned = replicas[0].owned_nodes
        for replica in replicas[1:]:
            assert replica.owned_nodes == owned


def assert_conservation(system, expected_vars):
    merged = system.all_store_variables()
    assert set(merged) == set(expected_vars), (
        f"variables lost or duplicated: {set(merged) ^ set(expected_vars)}"
    )
