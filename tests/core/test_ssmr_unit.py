"""Focused tests for the S-SMR execution model beyond the happy path."""

import pytest

from repro.baselines import SSMRSystem
from repro.core import SystemConfig
from repro.core.client import ScriptedWorkload
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp


def make_system(n_keys=8, n_partitions=2, seed=3, placement="random"):
    app = KeyValueApp({f"k{i}": i for i in range(n_keys)})
    return SSMRSystem(
        app,
        SystemConfig(
            n_partitions=n_partitions,
            seed=seed,
            latency=ConstantLatency(0.001),
            placement=placement,
        ),
    )


def split_keys(system):
    loc = system.initial_assignment
    keys = sorted(loc)
    ka = keys[0]
    kb = next(k for k in keys if loc[k] != loc[ka])
    return ka, kb


class TestSSMRExchangeModel:
    def test_all_involved_partitions_execute(self):
        system = make_system()
        ka, kb = split_keys(system)
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "transfer", (ka, kb, 1))])
        )
        system.run(until=10.0)
        assert client.completed == 1
        # every involved partition counted the command as executed
        for partition in {system.initial_assignment[ka],
                          system.initial_assignment[kb]}:
            assert system.servers(partition)[0].multi_partition_count == 1

    def test_writes_partitioned_correctly(self):
        """Each partition persists only its own variables' writes."""
        system = make_system()
        ka, kb = split_keys(system)
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "transfer", (ka, kb, 2))])
        )
        system.run(until=10.0)
        loc = system.initial_assignment
        sa = system.servers(loc[ka])[0]
        sb = system.servers(loc[kb])[0]
        assert sa.store.get(ka) == int(ka[1:]) - 2
        assert sb.store.get(kb) == int(kb[1:]) + 2
        # and neither partition grew a copy of the other's variable
        assert kb not in sa.store
        assert ka not in sb.store

    def test_sequential_multi_partition_commands_consistent(self):
        system = make_system()
        ka, kb = split_keys(system)
        cmds = [Command(f"c:{i}", "transfer", (ka, kb, 1)) for i in range(15)]
        cmds.append(Command("c:sum", "sum", (ka, kb)))
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=60.0)
        assert client.completed == 16
        # transfers conserve the pair sum
        assert client.results["c:sum"][1] == int(ka[1:]) + int(kb[1:])

    def test_replicas_agree_in_ssmr_mode(self):
        system = make_system(n_partitions=3)
        loc = system.initial_assignment
        keys = sorted(loc)
        cmds = []
        for i in range(20):
            a, b = keys[i % len(keys)], keys[(i + 3) % len(keys)]
            if a != b:
                cmds.append(Command(f"c:{i}", "transfer", (a, b, 1)))
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=60.0)
        assert client.failed == 0
        for partition in system.partition_names:
            replicas = system.servers(partition)
            assert dict(replicas[0].store.items()) == dict(
                replicas[1].store.items()
            )

    def test_read_only_multi_partition_leaves_state(self):
        system = make_system()
        ka, kb = split_keys(system)
        client = system.add_client(
            ScriptedWorkload(
                [
                    Command("c:0", "sum", (ka, kb)),
                    Command("c:1", "sum", (ka, kb)),
                ]
            )
        )
        system.run(until=20.0)
        assert client.results["c:0"][1] == client.results["c:1"][1]

    def test_oracle_never_replans_in_ssmr(self):
        system = make_system()
        ka, kb = split_keys(system)
        cmds = [Command(f"c:{i}", "transfer", (ka, kb, 1)) for i in range(40)]
        system.add_client(ScriptedWorkload(cmds))
        system.run(until=60.0)
        assert system.oracle_replicas()[0].version == 0
        assert "plans_applied" not in system.monitor.counters()
