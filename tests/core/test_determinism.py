"""Whole-system determinism: identical seeds must produce bit-identical
executions — the property every debugging and reproduction workflow in
this repository rests on."""

from repro.core.client import ScriptedWorkload
from repro.smr import Command

from tests.core.conftest import build_system


def run_fingerprint(seed, repartition=True):
    system = build_system(
        n_keys=16, n_partitions=3, seed=seed, repartition=repartition,
        threshold=150,
    )
    cmds = [
        Command(f"c:{i}", "transfer", (f"k{2 * (i % 8)}", f"k{2 * (i % 8) + 1}", 1))
        for i in range(120)
    ]
    client = system.add_client(ScriptedWorkload(cmds))
    system.run(until=90.0)
    return {
        "results": dict(client.results),
        "events": system.sim.events_processed,
        "messages": system.net.messages_sent,
        "stores": {
            p: tuple(sorted(system.servers(p)[0].store.items()))
            for p in system.partition_names
        },
        "oracle_version": system.oracle_replicas()[0].version,
        "completed": client.completed,
    }


class TestDeterminism:
    def test_identical_seed_identical_execution(self):
        a = run_fingerprint(7)
        b = run_fingerprint(7)
        assert a == b

    def test_different_seed_different_execution(self):
        a = run_fingerprint(7)
        b = run_fingerprint(8)
        # same logical results, different physical execution
        assert a["completed"] == b["completed"]
        assert a["messages"] != b["messages"] or a["stores"] != b["stores"]

    def test_determinism_without_repartitioning(self):
        a = run_fingerprint(3, repartition=False)
        b = run_fingerprint(3, repartition=False)
        assert a == b
