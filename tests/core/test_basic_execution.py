"""End-to-end tests for single- and multi-partition command execution."""

import pytest

from repro.smr import Command
from repro.smr.command import CommandKind, ReplyStatus

from tests.core.conftest import (
    assert_conservation,
    assert_replicas_agree,
    build_system,
    ok_results,
    run_script,
)


class TestSinglePartition:
    def test_read_returns_initial_value(self):
        system = build_system()
        client = run_script(system, [Command("c:0", "read", ("k3",))])
        assert ok_results(client) == {"c:0": 3}

    def test_write_then_read(self):
        system = build_system()
        client = run_script(
            system,
            [
                Command("c:0", "write", ("k0", 99)),
                Command("c:1", "read", ("k0",)),
            ],
        )
        assert ok_results(client)["c:1"] == 99

    def test_closed_loop_sequences_commands(self):
        system = build_system()
        cmds = [Command(f"c:{i}", "write", ("k0", i)) for i in range(10)]
        cmds.append(Command("c:final", "read", ("k0",)))
        client = run_script(system, cmds)
        assert client.completed == 11
        assert ok_results(client)["c:final"] == 9

    def test_cache_learned_after_first_command(self):
        system = build_system()
        client = run_script(
            system,
            [Command("c:0", "read", ("k0",)), Command("c:1", "read", ("k0",))],
        )
        assert client.completed == 2
        # second command hit the cache; only one oracle query happened
        assert system.monitor.counters()["oracle_queries_total"] == 1

    def test_many_clients_all_complete(self):
        system = build_system(n_keys=16, n_partitions=4)
        clients = []
        for c in range(8):
            cmds = [
                Command(f"c{c}:{i}", "read", (f"k{(c + i) % 16}",))
                for i in range(20)
            ]
            from repro.core.client import ScriptedWorkload

            clients.append(system.add_client(ScriptedWorkload(cmds)))
        system.run(until=60.0)
        assert all(cl.completed == 20 for cl in clients)


class TestMultiPartition:
    def _system_with_known_split(self):
        # placement 'hash' is deterministic; find two keys on different parts
        system = build_system(n_keys=8, n_partitions=2)
        loc = system.initial_assignment
        keys = sorted(loc)
        k_a = keys[0]
        k_b = next(k for k in keys if loc[k] != loc[k_a])
        return system, k_a, k_b

    def test_cross_partition_sum(self):
        system, ka, kb = self._system_with_known_split()
        expected = int(ka[1:]) + int(kb[1:])
        client = run_script(system, [Command("c:0", "sum", (ka, kb))])
        assert ok_results(client)["c:0"] == expected
        assert system.monitor.counters()["multi_partition_commands"] == 1

    def test_cross_partition_transfer_moves_value(self):
        system, ka, kb = self._system_with_known_split()
        client = run_script(
            system,
            [
                Command("c:0", "transfer", (ka, kb, 5)),
                Command("c:1", "read", (ka,)),
                Command("c:2", "read", (kb,)),
            ],
        )
        results = ok_results(client)
        assert results["c:1"] == int(ka[1:]) - 5
        assert results["c:2"] == int(kb[1:]) + 5

    def test_borrowed_variables_return_home(self):
        system, ka, kb = self._system_with_known_split()
        loc = system.initial_assignment
        run_script(system, [Command("c:0", "transfer", (ka, kb, 1))])
        # each key must live in its original partition afterwards
        for key in (ka, kb):
            server = system.servers(loc[key])[0]
            assert key in server.store, f"{key} did not return to {loc[key]}"
        assert_conservation(system, [f"k{i}" for i in range(8)])
        assert_replicas_agree(system)

    def test_interleaved_multi_partition_commands_from_two_clients(self):
        system, ka, kb = self._system_with_known_split()
        from repro.core.client import ScriptedWorkload

        c1 = system.add_client(
            ScriptedWorkload(
                [Command(f"a:{i}", "transfer", (ka, kb, 1)) for i in range(10)]
            )
        )
        c2 = system.add_client(
            ScriptedWorkload(
                [Command(f"b:{i}", "transfer", (kb, ka, 1)) for i in range(10)]
            )
        )
        system.run(until=60.0)
        assert c1.completed == 10 and c2.completed == 10
        # net effect zero
        merged = system.all_store_variables()
        assert merged[ka] == int(ka[1:])
        assert merged[kb] == int(kb[1:])
        assert_replicas_agree(system)

    def test_three_way_command(self):
        system = build_system(n_keys=12, n_partitions=3)
        loc = system.initial_assignment
        # find three keys on three distinct partitions
        by_part = {}
        for key, part in sorted(loc.items()):
            by_part.setdefault(part, key)
        if len(by_part) < 3:
            pytest.skip("placement did not spread over 3 partitions")
        keys = tuple(sorted(by_part.values()))
        expected = sum(int(k[1:]) for k in keys)
        client = run_script(system, [Command("c:0", "sum", keys)])
        assert ok_results(client)["c:0"] == expected
        assert_conservation(system, [f"k{i}" for i in range(12)])


class TestNokPaths:
    def test_access_to_unknown_variable_noks(self):
        system = build_system()
        client = run_script(system, [Command("c:0", "read", ("nope",))])
        assert client.failed == 1
        assert client.results["c:0"][0] == ReplyStatus.NOK

    def test_create_new_variable(self):
        system = build_system()
        client = run_script(
            system,
            [
                Command("c:0", "create", ("fresh",), kind=CommandKind.CREATE),
                Command("c:1", "read", ("fresh",)),
            ],
        )
        assert client.completed == 2
        assert ok_results(client)["c:1"] == 0  # KeyValueApp initial value

    def test_create_duplicate_noks(self):
        system = build_system()
        client = run_script(
            system,
            [Command("c:0", "create", ("k0",), kind=CommandKind.CREATE)],
        )
        assert client.failed == 1

    def test_delete_then_access_noks(self):
        system = build_system()
        client = run_script(
            system,
            [
                Command("c:0", "delete", ("k0",), kind=CommandKind.DELETE),
                Command("c:1", "read", ("k0",)),
            ],
        )
        assert client.completed == 1
        assert client.results["c:1"][0] == ReplyStatus.NOK

    def test_delete_unknown_noks(self):
        system = build_system()
        client = run_script(
            system,
            [Command("c:0", "delete", ("ghost",), kind=CommandKind.DELETE)],
        )
        assert client.failed == 1


class TestOracleDispatchMode:
    """The base protocol (Algorithm 1/2): every command goes through the
    oracle, which forwards it to the partitions."""

    def test_single_partition_via_oracle(self):
        system = build_system(oracle_dispatch=True)
        client = run_script(system, [Command("c:0", "read", ("k1",))])
        assert ok_results(client)["c:0"] == 1

    def test_multi_partition_via_oracle(self):
        system = build_system(oracle_dispatch=True)
        loc = system.initial_assignment
        keys = sorted(loc)
        ka = keys[0]
        kb = next(k for k in keys if loc[k] != loc[ka])
        client = run_script(system, [Command("c:0", "sum", (ka, kb))])
        assert ok_results(client)["c:0"] == int(ka[1:]) + int(kb[1:])

    def test_every_command_queries_oracle(self):
        system = build_system(oracle_dispatch=True)
        run_script(
            system,
            [Command(f"c:{i}", "read", ("k0",)) for i in range(5)],
        )
        assert system.monitor.counters()["oracle_queries_total"] == 5
