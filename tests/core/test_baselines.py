"""Behavioural tests for the S-SMR and DS-SMR baselines."""

import random

import pytest

from repro.baselines import DSSMRSystem, SSMRSystem, optimized_placement
from repro.core import SystemConfig
from repro.core.client import CallbackWorkload, ScriptedWorkload
from repro.partitioning import WorkloadGraph
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp


def kv_app(n):
    return KeyValueApp({f"k{i}": i for i in range(n)})


def make_ssmr(n_keys=8, n_partitions=2, seed=3, placement="random"):
    return SSMRSystem(
        kv_app(n_keys),
        SystemConfig(
            n_partitions=n_partitions,
            seed=seed,
            latency=ConstantLatency(0.001),
            placement=placement,
        ),
    )


def make_dssmr(n_keys=8, n_partitions=2, seed=3):
    return DSSMRSystem(
        kv_app(n_keys),
        SystemConfig(
            n_partitions=n_partitions, seed=seed, latency=ConstantLatency(0.001)
        ),
    )


def split_keys(system):
    loc = system.initial_assignment
    keys = sorted(loc)
    ka = keys[0]
    kb = next(k for k in keys if loc[k] != loc[ka])
    return ka, kb


class TestSSMR:
    def test_single_partition_commands_work(self):
        system = make_ssmr()
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "read", ("k2",))])
        )
        system.run(until=10.0)
        assert client.completed == 1

    def test_multi_partition_command_correct_result(self):
        system = make_ssmr()
        ka, kb = split_keys(system)
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "sum", (ka, kb))])
        )
        system.run(until=10.0)
        assert client.results["c:0"][1] == int(ka[1:]) + int(kb[1:])

    def test_variables_never_move(self):
        system = make_ssmr()
        ka, kb = split_keys(system)
        loc = system.initial_assignment
        client = system.add_client(
            ScriptedWorkload(
                [Command(f"c:{i}", "transfer", (ka, kb, 1)) for i in range(10)]
            )
        )
        system.run(until=30.0)
        assert client.completed == 10
        for key in (ka, kb):
            server = system.servers(loc[key])[0]
            assert key in server.store
            assert system.app.graph_node_of(key) in server.owned_nodes

    def test_writes_visible_on_both_partitions_afterwards(self):
        system = make_ssmr()
        ka, kb = split_keys(system)
        client = system.add_client(
            ScriptedWorkload(
                [
                    Command("c:0", "transfer", (ka, kb, 3)),
                    Command("c:1", "read", (ka,)),
                    Command("c:2", "read", (kb,)),
                ]
            )
        )
        system.run(until=15.0)
        assert client.results["c:1"][1] == int(ka[1:]) - 3
        assert client.results["c:2"][1] == int(kb[1:]) + 3

    def test_never_repartitions(self):
        system = make_ssmr()
        ka, kb = split_keys(system)
        system.add_client(
            ScriptedWorkload(
                [Command(f"c:{i}", "transfer", (ka, kb, 1)) for i in range(50)]
            )
        )
        system.run(until=60.0)
        assert system.oracle_replicas()[0].version == 0

    def test_optimized_placement_reduces_multipartition_rate(self):
        # workload graph: pairs (k0,k1), (k2,k3)... heavily co-accessed
        n = 16
        graph = WorkloadGraph()
        for i in range(0, n, 2):
            graph.add_edge(f"k{i}", f"k{i + 1}", 100.0)
        placement = optimized_placement(graph, 4, seed=1)

        def run(place):
            system = SSMRSystem(
                kv_app(n),
                SystemConfig(
                    n_partitions=4,
                    seed=3,
                    latency=ConstantLatency(0.001),
                    placement=place,
                ),
            )
            cmds = [
                Command(f"c:{i}", "transfer", (f"k{2 * (i % 8)}", f"k{2 * (i % 8) + 1}", 1))
                for i in range(80)
            ]
            client = system.add_client(ScriptedWorkload(cmds))
            system.run(until=60.0)
            assert client.completed == 80
            return system.monitor.counters().get("multi_partition_commands", 0)

        assert run(placement) == 0  # perfect partitioning: no cross commands
        assert run("random") > 0


class TestDSSMR:
    def test_multi_partition_command_migrates_permanently(self):
        system = make_dssmr()
        ka, kb = split_keys(system)
        client = system.add_client(
            ScriptedWorkload([Command("c:0", "sum", (ka, kb))])
        )
        system.run(until=10.0)
        assert client.completed == 1
        # both keys now live on the same (target) partition
        owners = []
        for partition in system.partition_names:
            server = system.servers(partition)[0]
            if ka in server.store:
                owners.append((partition, ka))
            if kb in server.store:
                owners.append((partition, kb))
        assert len(owners) == 2
        assert owners[0][0] == owners[1][0], "keys did not end up colocated"

    def test_oracle_map_tracks_migrations(self):
        system = make_dssmr()
        ka, kb = split_keys(system)
        system.add_client(ScriptedWorkload([Command("c:0", "sum", (ka, kb))]))
        system.run(until=10.0)
        loc = system.oracle_replicas()[0].location
        assert loc[ka] == loc[kb]

    def test_subsequent_commands_single_partition(self):
        system = make_dssmr()
        ka, kb = split_keys(system)
        client = system.add_client(
            ScriptedWorkload(
                [
                    Command("c:0", "sum", (ka, kb)),
                    Command("c:1", "sum", (ka, kb)),
                ]
            )
        )
        system.run(until=15.0)
        assert client.completed == 2
        # the second sum found both keys colocated -> one migration only
        assert system.monitor.counters().get("dssmr_migrations", 0) == 1

    def test_thrashing_when_state_not_perfectly_partitionable(self):
        """Spoke keys shared between two hub communities ping-pong under
        DS-SMR's move-to-target policy (the pathology §7 describes)."""
        placement = {
            "k0": 0, "k1": 0,   # hub A (two nodes -> majority stays put)
            "k2": 1, "k3": 1,   # hub B
            "k4": 2, "k5": 2,   # shared spokes
        }
        system = DSSMRSystem(
            kv_app(6),
            SystemConfig(
                n_partitions=3,
                seed=3,
                latency=ConstantLatency(0.001),
                placement=placement,
            ),
        )
        cmds = []
        for i in range(30):
            if i % 2 == 0:
                cmds.append(Command(f"c:{i}", "sum", ("k0", "k1", "k4")))
            else:
                cmds.append(Command(f"c:{i}", "sum", ("k2", "k3", "k4")))
        client = system.add_client(ScriptedWorkload(cmds))
        system.run(until=60.0)
        assert client.completed == 30
        # k4 migrates on (nearly) every command: A pulls it, then B pulls it.
        assert system.monitor.counters().get("dssmr_migrations", 0) >= 20

    def test_conservation_under_migrations(self):
        system = make_dssmr(n_keys=12, n_partitions=3)
        rng = random.Random(5)
        state = {"n": 0}

        def gen(client):
            if state["n"] >= 200:
                return None
            state["n"] += 1
            a, b = rng.sample(range(12), 2)
            return Command(
                f"{client.name}:{state['n']}", "transfer", (f"k{a}", f"k{b}", 1)
            )

        clients = [system.add_client(CallbackWorkload(gen)) for _ in range(3)]
        system.run(until=120.0)
        assert sum(c.completed for c in clients) == 200
        merged = system.all_store_variables()
        assert set(merged) == {f"k{i}" for i in range(12)}
        assert sum(merged.values()) == sum(range(12))
