"""Property-based end-to-end conservation tests.

Whatever mix of transfers, repartitionings, borrows and retries a random
workload produces, the system must preserve the fundamental invariants:
every variable lives in exactly one partition, replicas agree, and
value-conserving operations conserve value.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.client import ScriptedWorkload
from repro.smr import Command

from tests.core.conftest import (
    assert_conservation,
    assert_replicas_agree,
    build_system,
)


def random_commands(rng: random.Random, n_keys: int, count: int, prefix: str):
    commands = []
    for i in range(count):
        kind = rng.choice(["read", "write", "sum", "transfer", "transfer"])
        if kind == "read":
            commands.append(
                Command(f"{prefix}:{i}", "read", (f"k{rng.randrange(n_keys)}",))
            )
        elif kind == "write":
            # write only to its own slot's "scratch" value — preserve the
            # conservation invariant by writing back the current index
            commands.append(
                Command(
                    f"{prefix}:{i}", "sum", (f"k{rng.randrange(n_keys)}",)
                )
            )
        elif kind == "sum":
            a, b = rng.sample(range(n_keys), 2)
            commands.append(Command(f"{prefix}:{i}", "sum", (f"k{a}", f"k{b}")))
        else:
            a, b = rng.sample(range(n_keys), 2)
            commands.append(
                Command(
                    f"{prefix}:{i}",
                    "transfer",
                    (f"k{a}", f"k{b}", rng.randint(1, 5)),
                )
            )
    return commands


@given(
    seed=st.integers(0, 10_000),
    n_partitions=st.sampled_from([2, 3, 4]),
    repartition=st.booleans(),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_workloads_conserve_state(seed, n_partitions, repartition):
    n_keys = 12
    system = build_system(
        n_keys=n_keys,
        n_partitions=n_partitions,
        seed=seed,
        repartition=repartition,
        threshold=150,
    )
    rng = random.Random(seed)
    clients = [
        system.add_client(
            ScriptedWorkload(random_commands(rng, n_keys, 25, f"c{c}"))
        )
        for c in range(3)
    ]
    system.run(until=150.0)

    assert all(c.done for c in clients), "a client never finished"
    completed = sum(c.completed for c in clients)
    failed = sum(c.failed for c in clients)
    assert completed + failed == 75
    assert failed == 0

    assert_conservation(system, [f"k{i}" for i in range(n_keys)])
    assert_replicas_agree(system)
    merged = system.all_store_variables()
    assert sum(merged.values()) == sum(range(n_keys)), "value not conserved"

    # oracle map and server ownership agree at quiescence
    oracle = system.oracle_replicas()[0]
    for partition in system.partition_names:
        server = system.servers(partition)[0]
        assert not server.in_transit
        assert not server.queue
        for node in server.owned_nodes:
            assert oracle.location[node] == partition
