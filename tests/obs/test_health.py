"""Partition-health sampler: windowed samples, graph-quality series,
pure-observer property, and byte-identical determinism."""

import io

import pytest

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import ScriptedWorkload
from repro.obs.health import PartitionHealthSampler, load_health_jsonl
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp


def build_system(health_period=1.0, n_keys=8, n_partitions=2, seed=42,
                 tracing=False):
    app = KeyValueApp({f"k{i}": 100 for i in range(n_keys)})
    config = SystemConfig(
        n_partitions=n_partitions,
        seed=seed,
        latency=ConstantLatency(0.001),
        health_sample_period=health_period,
        tracing=tracing,
    )
    return DynaStarSystem(app, config)


def mixed_commands(system):
    loc = system.initial_assignment
    keys = sorted(loc)
    key_a = keys[0]
    key_b = next(k for k in keys if loc[k] != loc[key_a])
    return [
        Command("c:1", "read", (key_a,)),
        Command("c:2", "write", (key_a, 250)),
        Command("c:3", "sum", (key_a, key_b)),
        Command("c:4", "transfer", (key_a, key_b, 50)),
        Command("c:5", "read", (key_b,)),
    ]


class TestSamplerBasics:
    @pytest.fixture(scope="class")
    def run(self):
        system = build_system()
        client = system.add_client(ScriptedWorkload(mixed_commands(system)))
        system.run(until=10.0)
        assert client.completed == 5
        return system

    def test_samples_taken_at_fixed_periods(self, run):
        samples = run.health.samples
        assert len(samples) == 10
        assert [s["t"] for s in samples] == [float(i) for i in range(1, 11)]

    def test_per_partition_entries_cover_all_partitions(self, run):
        for sample in run.health.samples:
            assert set(sample["partitions"]) == set(run.partition_names)
            for entry in sample["partitions"].values():
                for key in (
                    "executed", "multi", "single", "queue_depth",
                    "admission_depth", "owned_nodes", "variables",
                    "in_transit",
                ):
                    assert key in entry
                assert entry["single"] == entry["executed"] - entry["multi"]

    def test_window_deltas_sum_to_totals(self, run):
        total = {
            name: sum(
                s["partitions"][name]["executed"] for s in run.health.samples
            )
            for name in run.partition_names
        }
        for name in run.partition_names:
            server = run.servers(name)[0]
            assert total[name] == server.executed_count

    def test_graph_quality_section_present(self, run):
        last = run.health.samples[-1]
        graph = last["graph"]
        assert graph["vertices"] == 8
        assert graph["edge_cut"] >= 0.0
        assert 0.0 <= graph["cut_fraction"] <= 1.0
        assert graph["imbalance"] >= 0.0
        assert len(last["hot"]) <= 5
        # hot list is sorted by descending weight
        weights = [w for _, w in last["hot"]]
        assert weights == sorted(weights, reverse=True)

    def test_monitor_series_recorded(self, run):
        snapshot = run.monitor.snapshot()
        assert any(k.startswith("health_load") for k in snapshot["series"])
        assert "health_edge_cut" in snapshot["series"]

    def test_export_load_roundtrip(self, run, tmp_path):
        path = str(tmp_path / "health.jsonl")
        n = run.health.export_jsonl(path)
        assert n == len(run.health.samples)
        assert load_health_jsonl(path) == run.health.to_records()


class TestSamplerConfig:
    def test_disabled_system_has_no_sampler(self):
        system = build_system(health_period=None)
        system.run(until=2.0)
        assert system.health is None

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PartitionHealthSampler(object(), period=0.0)

    def test_start_is_idempotent(self):
        system = build_system()
        system.start()
        system.health.start()  # second call must not double-schedule
        system.sim.run(until=3.0)
        assert len(system.health.samples) == 3


class TestSamplerIsPureObserver:
    def test_traces_identical_with_sampler_on_and_off(self):
        """The sampler reads state but never perturbs the protocol: the
        trace export must be byte-identical with sampling on or off."""
        exports = []
        for period in (None, 0.25):
            system = build_system(health_period=period, tracing=True)
            system.add_client(ScriptedWorkload(mixed_commands(system)))
            system.run(until=10.0)
            buffer = io.StringIO()
            system.tracer.export_jsonl(buffer)
            exports.append(buffer.getvalue())
        assert exports[0] == exports[1]
        assert exports[0]

    def test_run_twice_byte_identical_jsonl(self):
        exports = []
        for _ in range(2):
            system = build_system()
            system.add_client(ScriptedWorkload(mixed_commands(system)))
            system.run(until=10.0)
            buffer = io.StringIO()
            system.health.export_jsonl(buffer)
            exports.append(buffer.getvalue())
        assert exports[0] == exports[1]
        assert exports[0]
