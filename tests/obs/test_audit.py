"""Oracle decision audit log: unit behavior, end-to-end recording
through a repartitioning run, and byte-identical determinism."""

import io
import random

import pytest

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import CallbackWorkload
from repro.obs import audit as audit_mod
from repro.obs.audit import NULL_AUDIT, AuditLog, load_audit_jsonl
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp


class TestAuditLogUnit:
    def test_records_in_order_with_sequential_seq(self):
        log = AuditLog()
        log.record("a", 1.0, x=1)
        log.record("b", 2.0, y="s")
        assert [r["seq"] for r in log.records] == [0, 1]
        assert [r["kind"] for r in log.records] == ["a", "b"]
        assert log.records[0]["x"] == 1

    def test_disabled_log_records_nothing(self):
        log = AuditLog(enabled=False)
        assert log.record("a", 1.0) is None
        assert log.decision(1.0, 1, "threshold", True, {}, {}) is None
        assert len(log) == 0

    def test_null_audit_is_disabled(self):
        assert not NULL_AUDIT.enabled
        assert len(NULL_AUDIT) == 0

    def test_values_cleaned_at_record_time(self):
        log = AuditLog()
        mutable = {"inner": [1, 2], ("tuple", "key"): 3}
        log.record("a", 0.0, data=mutable)
        mutable["inner"].append(99)
        record = log.records[0]
        assert record["data"]["inner"] == [1, 2]
        # non-string keys are stringified so JSON export cannot fail
        assert "('tuple', 'key')" in record["data"]

    def test_decision_convenience_shape(self):
        log = AuditLog()
        log.decision(
            t=3.0,
            version=2,
            trigger="threshold",
            published=False,
            inputs={"vertices": 10},
            outputs={"edge_cut_after": 1.5},
        )
        (record,) = log.decisions()
        assert record["kind"] == audit_mod.DECISION
        assert record["version"] == 2
        assert record["published"] is False
        assert record["inputs"]["vertices"] == 10

    def test_export_load_roundtrip(self, tmp_path):
        log = AuditLog()
        log.record("a", 1.0, x=1)
        log.record("b", 2.0, y=[1, "z"])
        path = str(tmp_path / "audit.jsonl")
        assert log.export_jsonl(path) == 2
        loaded = load_audit_jsonl(path)
        assert loaded == log.to_records()

    def test_by_kind_and_reset(self):
        log = AuditLog()
        log.record("a", 1.0)
        log.record("b", 2.0)
        log.record("a", 3.0)
        assert len(log.by_kind("a")) == 2
        log.reset()
        assert len(log) == 0
        log.record("c", 4.0)
        assert log.records[0]["seq"] == 0


def build_audited_system(n_keys=40, n_partitions=4, seed=3, threshold=400,
                         audit=True, health_period=None):
    app = KeyValueApp({f"k{i}": i for i in range(n_keys)})
    config = SystemConfig(
        n_partitions=n_partitions,
        seed=seed,
        latency=ConstantLatency(0.001),
        repartition_enabled=True,
        repartition_threshold=threshold,
        hint_period=0.5,
        audit=audit,
        health_sample_period=health_period,
    )
    return DynaStarSystem(app, config)


def paired_workload(system, n_keys, total, seed=1, clients=4):
    rng = random.Random(seed)
    state = {"count": 0}

    def gen(client):
        if state["count"] >= total:
            return None
        state["count"] += 1
        base = 2 * rng.randrange(n_keys // 2)
        return Command(
            f"{client.name}:{state['count']}",
            "transfer",
            (f"k{base}", f"k{base + 1}", 1),
        )

    return [system.add_client(CallbackWorkload(gen)) for _ in range(clients)]


def run_audited(seed=3):
    system = build_audited_system(seed=seed)
    paired_workload(system, 40, total=1500)
    system.run(until=120.0)
    return system


class TestAuditEndToEnd:
    @pytest.fixture(scope="class")
    def system(self):
        return run_audited()

    def test_decisions_recorded_for_published_plans(self, system):
        decisions = system.audit.decisions()
        published = [d for d in decisions if d["published"]]
        assert len(published) >= 1
        assert len(published) == system.monitor.counters()["plans_applied"]

    def test_decision_inputs_and_outputs_populated(self, system):
        for decision in system.audit.decisions():
            inputs, outputs = decision["inputs"], decision["outputs"]
            assert inputs["vertices"] > 0
            assert inputs["threshold"] == 400
            assert inputs["trigger_changes"] >= 400
            assert decision["trigger"] == "threshold"
            for key in (
                "edge_cut_before", "edge_cut_after",
                "imbalance_before", "imbalance_after",
                "vertices_moved", "moved_top", "partition_delta",
            ):
                assert key in outputs
            # the hysteresis rule: published plans must beat the incumbent
            if decision["published"] and decision["version"] > 1:
                assert outputs["edge_cut_after"] < outputs["edge_cut_before"]

    def test_moved_counts_match_partition_delta(self, system):
        for decision in system.audit.decisions():
            outputs = decision["outputs"]
            gained = sum(
                d["gained"] for d in outputs["partition_delta"].values()
            )
            lost = sum(d["lost"] for d in outputs["partition_delta"].values())
            assert gained == lost == outputs["vertices_moved"]

    def test_lifecycle_times_are_ordered(self, system):
        """decision <= published <= applied <= quiesce per version."""
        records = system.audit.to_records()
        by_version = {}
        for record in records:
            by_version.setdefault(record["version"], []).append(record)
        published_versions = {
            d["version"] for d in system.audit.decisions() if d["published"]
        }
        assert published_versions  # the run must repartition at least once
        for version in published_versions:
            group = by_version[version]
            t_of = lambda kind: [r["t"] for r in group if r["kind"] == kind]
            (t_decision,) = t_of(audit_mod.DECISION)
            assert t_of(audit_mod.PUBLISHED), f"v{version} never published"
            t_published = min(t_of(audit_mod.PUBLISHED))
            assert t_decision <= t_published
            applied = t_of(audit_mod.APPLIED)
            assert applied and min(applied) >= t_published
            for t in t_of(audit_mod.QUIESCE):
                assert t >= min(applied)

    def test_relocations_reference_known_partitions(self, system):
        for record in system.audit.by_kind(audit_mod.RELOCATION):
            assert record["partition"] in system.partition_names
            assert record["objects_out"] >= 0
            assert record["nodes_out"] + record["nodes_in"] > 0

    def test_audit_disabled_records_nothing(self):
        system = build_audited_system(audit=False)
        paired_workload(system, 40, total=600)
        system.run(until=60.0)
        assert len(system.audit) == 0
        assert system.audit is NULL_AUDIT


class TestAuditDeterminism:
    def test_run_twice_byte_identical_jsonl(self):
        outputs = []
        for _ in range(2):
            system = run_audited(seed=7)
            buffer = io.StringIO()
            system.audit.export_jsonl(buffer)
            outputs.append(buffer.getvalue())
        assert outputs[0] == outputs[1]
        assert outputs[0]  # non-empty: the run actually repartitioned
