"""Unit tests for the span tracer: idempotent hand-offs, tombstones,
disabled no-ops, deterministic export."""

import io
import json

from repro.obs import NULL_TRACER, ROOT_SPAN, Tracer, load_jsonl


class TestSpanLifecycle:
    def test_begin_is_get_or_create(self):
        tr = Tracer()
        a = tr.begin("t1", "stage", 1.0)
        b = tr.begin("t1", "stage", 2.0)
        assert a is b
        assert a.start == 1.0  # first caller stamps the start

    def test_disc_separates_attempts(self):
        tr = Tracer()
        first = tr.begin("t1", "stage", 1.0, disc=0)
        second = tr.begin("t1", "stage", 2.0, disc=1)
        assert first is not second

    def test_finish_is_first_wins(self):
        tr = Tracer()
        span = tr.begin("t1", "stage", 1.0)
        tr.finish("t1", "stage", 2.0, status="ok")
        tr.finish("t1", "stage", 9.0, status="late")
        assert span.end == 2.0
        assert span.tags["status"] == "ok"

    def test_finished_key_is_tombstoned(self):
        tr = Tracer()
        tr.begin("t1", "stage", 1.0)
        tr.finish("t1", "stage", 2.0)
        # a lagging replica re-entering the stage must not resurrect it
        assert tr.begin("t1", "stage", 5.0) is None
        assert len(tr.spans) == 1

    def test_auto_parents_to_open_root(self):
        tr = Tracer()
        root = tr.start_trace("t1", 0.0)
        child = tr.begin("t1", "stage", 1.0)
        assert child.parent_id == root.span_id

    def test_explicit_parent_wins(self):
        tr = Tracer()
        tr.start_trace("t1", 0.0)
        outer = tr.begin("t1", "outer", 1.0)
        inner = tr.begin("t1", "inner", 2.0, parent=outer)
        assert inner.parent_id == outer.span_id

    def test_finish_trace_force_closes_stragglers(self):
        tr = Tracer()
        tr.start_trace("t1", 0.0)
        straggler = tr.begin("t1", "stage", 1.0, disc=0)
        root = tr.finish_trace("t1", 5.0, status="ok")
        assert root.end == 5.0
        assert straggler.end == 5.0
        assert straggler.tags.get("unfinished") is True

    def test_events_attach_to_open_spans_only(self):
        tr = Tracer()
        tr.begin("t1", "stage", 1.0)
        assert tr.event_on("t1", "stage", None, "ordered", 1.5, group="g0")
        tr.finish("t1", "stage", 2.0)
        assert not tr.event_on("t1", "stage", None, "late", 3.0)
        (span,) = tr.spans
        assert span.events == [(1.5, "ordered", {"group": "g0"})]

    def test_non_scalar_tags_become_repr(self):
        tr = Tracer()
        span = tr.begin("t1", "stage", 1.0, parts=("p0", "p1"))
        assert span.tags["parts"] == repr(("p0", "p1"))


class TestDisabledTracer:
    def test_every_call_is_a_noop(self):
        tr = Tracer(enabled=False)
        assert tr.start_trace("t1", 0.0) is None
        assert tr.begin("t1", "stage", 1.0) is None
        assert tr.finish("t1", "stage", 2.0) is None
        assert tr.finish_trace("t1", 3.0) is None
        assert not tr.event_on("t1", "stage", None, "e", 1.0)
        tr.record("fault", 1.0, kind="cut")
        assert tr.spans == [] and tr.records == []

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.spans == []


class TestExport:
    @staticmethod
    def _scripted_run(tr):
        tr.start_trace("cmd-1", 0.0, client="c0")
        tr.begin("cmd-1", "stage-a", 0.5, disc=0)
        tr.record("fault", 0.7, kind="cut", args=["a", "b"])
        tr.finish("cmd-1", "stage-a", 1.0, disc=0, status="ok")
        tr.finish_trace("cmd-1", 1.5, status="ok")

    def test_two_identical_runs_export_identical_bytes(self):
        outs = []
        for _ in range(2):
            tr = Tracer()
            self._scripted_run(tr)
            buf = io.StringIO()
            tr.export_jsonl(buf)
            outs.append(buf.getvalue())
        assert outs[0] == outs[1]

    def test_export_order_is_creation_order(self):
        tr = Tracer()
        self._scripted_run(tr)
        buf = io.StringIO()
        n = tr.export_jsonl(buf)
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert n == len(records) == 3
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)
        assert [r["kind"] for r in records] == ["span", "span", "event"]

    def test_jsonl_roundtrip(self):
        tr = Tracer()
        self._scripted_run(tr)
        buf = io.StringIO()
        tr.export_jsonl(buf)
        buf.seek(0)
        spans, events = load_jsonl(buf)
        assert {s.name for s in spans} == {ROOT_SPAN, "stage-a"}
        root = next(s for s in spans if s.name == ROOT_SPAN)
        assert root.finished and root.tags["status"] == "ok"
        (event,) = events
        assert event["name"] == "fault" and event["attrs"]["kind"] == "cut"

    def test_reset_clears_everything(self):
        tr = Tracer()
        self._scripted_run(tr)
        tr.reset()
        assert tr.spans == [] and tr.records == []
        # tombstones cleared too: the old key is usable again
        assert tr.begin("cmd-1", "stage-a", 0.0, disc=0) is not None
