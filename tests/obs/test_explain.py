"""The explain CLI: report rendering and the CI guard exit codes."""

import io
import json

from repro.obs import Tracer
from repro.obs.explain import explain, main
from repro.obs.analyze import TraceSet


def write_trace(path, corrupt=False):
    tr = Tracer()
    for i in range(3):
        uid = f"c:{i}"
        tr.start_trace(uid, float(i), client="c0")
        tr.begin(uid, "oracle-lookup", i + 0.1, disc=0)
        tr.finish(uid, "oracle-lookup", i + 0.3, disc=0)
        tr.begin(uid, "multicast-order", i + 0.3, disc=0)
        tr.finish(uid, "multicast-order", i + 0.6, disc=0)
        tr.finish_trace(uid, i + 0.8, status="ok")
    records = tr.to_records()
    if corrupt:
        # point one child at a parent id that does not exist
        for record in records:
            if record["kind"] == "span" and record["name"] == "oracle-lookup":
                record["parent"] = 9999
                break
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


class TestExplainReport:
    def test_report_shape_and_sums(self):
        tr = Tracer()
        tr.start_trace("c:1", 0.0)
        tr.begin("c:1", "stage-a", 0.0)
        tr.finish("c:1", "stage-a", 0.4)
        tr.finish_trace("c:1", 1.0)
        out = io.StringIO()
        report = explain(TraceSet.from_tracer(tr), out=out)
        assert report["traces"] == 1
        shares = {row["stage"]: row["total"] for row in report["critical"]}
        assert sum(shares.values()) == report["end_to_end"]["total"]
        text = out.getvalue()
        assert "critical-path attribution" in text
        assert "stage durations" in text


class TestMainExitCodes:
    def test_clean_trace_exits_zero(self, tmp_path, capsys):
        path = write_trace(str(tmp_path / "t.jsonl"))
        code = main(
            [path, "--expect-stages", "oracle-lookup,multicast-order",
             "--check-integrity"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all 2 expected stages present" in out
        assert "span-tree integrity: ok" in out

    def test_missing_stage_exits_one(self, tmp_path, capsys):
        path = write_trace(str(tmp_path / "t.jsonl"))
        code = main([path, "--expect-stages", "oracle-lookup,borrow"])
        assert code == 1
        assert "MISSING stages: borrow" in capsys.readouterr().err

    def test_integrity_violation_exits_two(self, tmp_path, capsys):
        path = write_trace(str(tmp_path / "t.jsonl"), corrupt=True)
        code = main([path, "--check-integrity"])
        assert code == 2
        assert "INTEGRITY:" in capsys.readouterr().err
