"""The run-report CLI: artifact loading, section assembly, rendering,
exit codes, and byte-identical determinism of the JSON report."""

import io
import json
import random
from contextlib import redirect_stdout

import pytest

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import CallbackWorkload, ScriptedWorkload
from repro.experiments.harness import export_run_artifacts
from repro.obs import report as report_mod
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp


def build_obs_system(n_keys=40, n_partitions=4, seed=3, threshold=400):
    app = KeyValueApp({f"k{i}": i for i in range(n_keys)})
    config = SystemConfig(
        n_partitions=n_partitions,
        seed=seed,
        latency=ConstantLatency(0.001),
        repartition_enabled=True,
        repartition_threshold=threshold,
        hint_period=0.5,
        tracing=True,
        audit=True,
        health_sample_period=1.0,
    )
    return DynaStarSystem(app, config)


def paired_workload(system, n_keys, total, seed=1, clients=4):
    rng = random.Random(seed)
    state = {"count": 0}

    def gen(client):
        if state["count"] >= total:
            return None
        state["count"] += 1
        base = 2 * rng.randrange(n_keys // 2)
        return Command(
            f"{client.name}:{state['count']}",
            "transfer",
            (f"k{base}", f"k{base + 1}", 1),
        )

    return [system.add_client(CallbackWorkload(gen)) for _ in range(clients)]


def run_and_export(directory, seed=3, total=1500):
    system = build_obs_system(seed=seed)
    paired_workload(system, 40, total=total)
    system.run(until=120.0)
    written = export_run_artifacts(system, str(directory))
    return system, written


class TestArtifactExport:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("run")
        system, written = run_and_export(directory)
        return directory, system, written

    def test_all_four_artifacts_written(self, artifacts):
        _, _, written = artifacts
        assert set(written) == {"trace", "metrics", "audit", "health"}

    def test_metrics_json_parses(self, artifacts):
        directory, _, _ = artifacts
        with open(directory / "metrics.json") as fh:
            snapshot = json.load(fh)
        assert set(snapshot) == {"counters", "gauges", "histograms", "series"}

    def test_report_builds_all_sections(self, artifacts):
        directory, system, _ = artifacts
        loaded = report_mod.load_artifacts(str(directory))
        report = report_mod.build_report(loaded)
        assert report["run"]["completed"] > 0
        assert set(report["partitions"]["per_partition"]) == set(
            system.partition_names
        )
        assert len(report["repartitions"]) >= 1
        assert report["graph"]["last"]["vertices"] > 0
        assert report["stages"]["traces"] > 0

    def test_repartition_events_carry_cost_attribution(self, artifacts):
        directory, system, _ = artifacts
        loaded = report_mod.load_artifacts(str(directory))
        report = report_mod.build_report(loaded)
        published = [
            e for e in report["repartitions"] if e.get("published")
        ]
        assert published
        for event in published:
            timing = event["timing"]
            assert timing["compute"] >= 0.0
            assert timing["multicast"] > 0.0
            assert timing["total"] == pytest.approx(
                sum(v for k, v in timing.items() if k != "total")
            )
            assert event["outputs"]["vertices_moved"] >= 0

    def test_moved_section_ranked_by_weight(self, artifacts):
        directory, _, _ = artifacts
        loaded = report_mod.load_artifacts(str(directory))
        moved = report_mod.build_report(loaded)["moved"]
        weights = [entry["weight"] for entry in moved]
        assert weights == sorted(weights, reverse=True)

    def test_cli_text_and_json_exit_zero(self, artifacts, capsys):
        directory, _, _ = artifacts
        assert report_mod.main([str(directory)]) == 0
        text = capsys.readouterr().out
        assert "== Repartitions" in text
        assert report_mod.main([str(directory), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "repartitions" in payload

    def test_cli_out_file(self, artifacts, tmp_path):
        directory, _, _ = artifacts
        out = tmp_path / "report.json"
        assert (
            report_mod.main(
                [str(directory), "--format", "json", "--out", str(out)]
            )
            == 0
        )
        assert json.loads(out.read_text())["run"]["completed"] > 0


class TestRepartitionSection:
    def test_suppressed_decisions_sharing_a_version_keep_own_entries(self):
        """Hysteresis-suppressed decisions never bump the oracle
        version, so several carry the same candidate version; the
        report must not collapse them into one event."""
        audit = [
            {"kind": "repartition-decision", "seq": 0, "t": 1.0,
             "version": 1, "trigger": "threshold", "published": True,
             "inputs": {}, "outputs": {}},
            {"kind": "plan-published", "seq": 1, "t": 1.5, "version": 1},
            {"kind": "plan-applied", "seq": 2, "t": 2.0, "version": 1},
            {"kind": "repartition-decision", "seq": 3, "t": 3.0,
             "version": 2, "trigger": "threshold", "published": False,
             "inputs": {}, "outputs": {}},
            {"kind": "repartition-decision", "seq": 4, "t": 4.0,
             "version": 2, "trigger": "threshold", "published": False,
             "inputs": {}, "outputs": {}},
        ]
        events = report_mod._repartition_section(audit)
        assert [(e["version"], e["published"]) for e in events] == [
            (1, True), (2, False), (2, False)
        ]
        assert events[0]["timing"]["compute"] == pytest.approx(0.5)
        assert events[0]["timing"]["multicast"] == pytest.approx(0.5)
        # suppressed decisions own no lifecycle records
        assert "timing" not in events[1]


class TestCLIErrors:
    def test_missing_directory_exits_2(self, capsys):
        assert report_mod.main(["/nonexistent-run-dir"]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_empty_directory_exits_2(self, tmp_path, capsys):
        assert report_mod.main([str(tmp_path)]) == 2
        assert "no artifacts" in capsys.readouterr().err

    def test_partial_artifacts_still_report(self, tmp_path, capsys):
        """A metrics-only directory (tracing off) must still produce a
        report rather than erroring."""
        system = DynaStarSystem(
            KeyValueApp({"k0": 0, "k1": 1}),
            SystemConfig(n_partitions=2, seed=5, latency=ConstantLatency(0.001)),
        )
        system.add_client(
            ScriptedWorkload([Command("c:1", "read", ("k0",))])
        )
        system.run(until=5.0)
        export_run_artifacts(system, str(tmp_path))
        assert report_mod.main([str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repartitions"] == []
        assert "stages" not in payload


class TestReportDeterminism:
    def test_json_report_byte_identical_across_runs(self, tmp_path):
        outputs = []
        for i in range(2):
            directory = tmp_path / f"run{i}"
            run_and_export(directory, seed=7)
            buffer = io.StringIO()
            with redirect_stdout(buffer):
                assert report_mod.main([str(directory), "--format", "json"]) == 0
            outputs.append(buffer.getvalue())
        assert outputs[0] == outputs[1]
        assert outputs[0]
