"""End-to-end tracing through a live DynaStar deployment.

Runs real workloads with ``tracing=True`` and checks the resulting span
trees: required protocol stages present, structural integrity, and
critical-path shares that sum exactly to each command's latency.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynaStarSystem, SystemConfig
from repro.core.client import ScriptedWorkload
from repro.obs.analyze import (
    TraceSet,
    check_integrity,
    critical_path,
    stage_names,
)
from repro.sim import ConstantLatency
from repro.smr import Command, KeyValueApp

#: Stages the issue requires a multi-partition command to pass through.
REQUIRED_STAGES = {
    "client-submit",
    "oracle-lookup",
    "multicast-order",
    "borrow",
    "execute",
    "return",
    "reply",
}


def build_traced_system(n_keys=8, n_partitions=2, seed=42):
    app = KeyValueApp({f"k{i}": 100 for i in range(n_keys)})
    config = SystemConfig(
        n_partitions=n_partitions,
        seed=seed,
        latency=ConstantLatency(0.001),
        tracing=True,
    )
    return DynaStarSystem(app, config)


def cross_partition_keys(system):
    loc = system.initial_assignment
    keys = sorted(loc)
    key_a = keys[0]
    key_b = next(k for k in keys if loc[k] != loc[key_a])
    return key_a, key_b


class TestMixedWorkloadTraces:
    @pytest.fixture(scope="class")
    def run(self):
        system = build_traced_system()
        key_a, key_b = cross_partition_keys(system)
        commands = [
            Command("c:1", "read", (key_a,)),
            Command("c:2", "write", (key_a, 250)),
            Command("c:3", "sum", (key_a, key_b)),
            Command("c:4", "transfer", (key_a, key_b, 50)),
            Command("c:5", "read", (key_b,)),
        ]
        client = system.add_client(ScriptedWorkload(commands))
        system.run(until=10.0)
        assert client.completed == 5 and client.failed == 0
        return system, client

    def test_all_required_stages_appear(self, run):
        system, _ = run
        traces = TraceSet.from_tracer(system.tracer)
        assert REQUIRED_STAGES <= stage_names(traces)

    def test_multi_partition_trace_has_borrow_and_return(self, run):
        system, _ = run
        traces = TraceSet.from_tracer(system.tracer)
        names = {s.name for s in traces.by_trace["c:4"]}
        assert {"borrow", "return", "execute", "multicast-order"} <= names

    def test_every_trace_is_complete_and_sound(self, run):
        system, client = run
        traces = TraceSet.from_tracer(system.tracer)
        assert check_integrity(traces) == []
        assert set(traces.complete_traces()) == set(client.results)

    def test_critical_path_sums_to_latency(self, run):
        system, _ = run
        traces = TraceSet.from_tracer(system.tracer)
        for trace_id in traces.complete_traces():
            root = traces.root(trace_id)
            shares = critical_path(traces, trace_id)
            assert sum(shares.values()) == pytest.approx(
                root.duration, abs=1e-12
            )

    def test_root_tags_carry_command_metadata(self, run):
        system, _ = run
        traces = TraceSet.from_tracer(system.tracer)
        root = traces.root("c:4")
        assert root.tags["status"] == "ok"
        assert root.tags["op"] == "transfer"
        assert root.tags["multi"] is True
        assert root.tags["latency"] == pytest.approx(root.duration)

    def test_cache_hit_skips_oracle_lookup(self, run):
        system, _ = run
        traces = TraceSet.from_tracer(system.tracer)
        # c:2 reuses the location cached by c:1 — no oracle round-trip
        names = {s.name for s in traces.by_trace["c:2"]}
        assert "oracle-lookup" not in names


OPS = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "sum", "transfer"]),
        st.integers(0, 5),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=8,
)


class TestSpanTreePropertyUnderMixedWorkloads:
    @given(ops=OPS, seed=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_integrity_holds_for_arbitrary_mixed_workloads(self, ops, seed):
        system = build_traced_system(n_keys=6, seed=seed)
        commands = []
        for i, (op, a, b) in enumerate(ops):
            ka, kb = f"k{a}", f"k{b}"
            if op == "read":
                args = (ka,)
            elif op == "write":
                args = (ka, i)
            elif op == "sum":
                args = (ka, kb)
            else:
                args = (ka, kb, 1)
            commands.append(Command(f"c:{i}", op, args))
        client = system.add_client(ScriptedWorkload(commands))
        system.run(until=30.0)
        assert client.failed == 0

        traces = TraceSet.from_tracer(system.tracer)
        assert check_integrity(traces) == []
        for trace_id in traces.complete_traces():
            spans = traces.by_trace[trace_id]
            root = traces.root(trace_id)
            # exactly one root, no orphans, monotone intervals
            assert sum(1 for s in spans if s.name == "command") == 1
            ids = {s.span_id for s in spans}
            for span in spans:
                if span is not root:
                    assert span.parent_id in ids
                assert span.finished and span.end >= span.start
            shares = critical_path(traces, trace_id)
            assert sum(shares.values()) == pytest.approx(
                root.duration, abs=1e-12
            )
