"""Direct unit coverage of ``repro.obs.analyze`` critical-path
extraction on multi-partition (borrow/return) command trees — the
shapes the e2e suites only exercise implicitly."""

import pytest

from repro.obs.analyze import (
    UNTRACED,
    TraceSet,
    check_integrity,
    critical_path,
    stage_breakdown,
)
from repro.obs.trace import Tracer


def multi_partition_trace(tracer: Tracer, uid: str, base: float = 0.0):
    """The canonical borrow-and-return span tree of one cross-partition
    transfer: ordering, a borrow window in which execution happens,
    the return of borrowed state, then the reply."""
    t = lambda dt: base + dt
    tracer.start_trace(uid, t(0.0), op="transfer", multi=True)
    tracer.begin(uid, "oracle-lookup", t(0.5), disc=1)
    tracer.finish(uid, "oracle-lookup", t(2.0), disc=1)
    tracer.begin(uid, "multicast-order", t(2.0), disc=1)
    tracer.finish(uid, "multicast-order", t(4.0), disc=1)
    tracer.begin(uid, "borrow", t(4.0), disc=1)
    tracer.begin(uid, "execute", t(5.0), disc=1)
    tracer.finish(uid, "execute", t(6.0), disc=1)
    tracer.finish(uid, "borrow", t(7.0), disc=1)
    tracer.begin(uid, "return", t(7.0), disc=1)
    tracer.finish(uid, "return", t(9.0), disc=1)
    tracer.begin(uid, "reply", t(9.0), disc=1)
    tracer.finish(uid, "reply", t(9.5), disc=1)
    tracer.finish_trace(uid, t(10.0), status="ok")


class TestCriticalPathOnBorrowReturnTrees:
    @pytest.fixture()
    def traces(self):
        tracer = Tracer()
        multi_partition_trace(tracer, "m:1")
        return TraceSet.from_tracer(tracer)

    def test_tree_passes_integrity(self, traces):
        assert check_integrity(traces) == []

    def test_every_instant_charged_to_one_stage(self, traces):
        shares = critical_path(traces, "m:1")
        assert shares == pytest.approx(
            {
                UNTRACED: 1.0,  # 0-0.5 before lookup, 9.5-10 after reply
                "oracle-lookup": 1.5,
                "multicast-order": 2.0,
                "borrow": 2.0,  # 4-5 and 6-7: borrow minus execute
                "execute": 1.0,  # nested span wins its window
                "return": 2.0,
                "reply": 0.5,
            }
        )

    def test_shares_sum_to_root_duration(self, traces):
        shares = critical_path(traces, "m:1")
        root = traces.root("m:1")
        assert sum(shares.values()) == pytest.approx(root.duration)

    def test_nested_execute_beats_enclosing_borrow(self, traces):
        """The deepest covering span wins its segment: execute time must
        not be double-charged to the enclosing borrow window."""
        shares = critical_path(traces, "m:1")
        assert shares["execute"] == pytest.approx(1.0)
        assert shares["borrow"] == pytest.approx(2.0)


class TestCriticalPathRetriedAttempts:
    def test_two_borrow_attempts_both_charged(self):
        """A retried multi-partition command has two borrow spans under
        distinct attempt discriminators; both contribute."""
        tracer = Tracer()
        uid = "m:2"
        tracer.start_trace(uid, 0.0, op="transfer", multi=True)
        tracer.begin(uid, "borrow", 1.0, disc=1)
        tracer.finish(uid, "borrow", 2.0, disc=1, aborted=True)
        tracer.begin(uid, "borrow", 3.0, disc=2)
        tracer.finish(uid, "borrow", 5.0, disc=2)
        tracer.finish_trace(uid, 6.0, status="ok")
        shares = critical_path(TraceSet.from_tracer(tracer), uid)
        assert shares["borrow"] == pytest.approx(3.0)
        assert shares[UNTRACED] == pytest.approx(3.0)

    def test_same_start_ties_break_to_deeper_span(self):
        """borrow and its execute child starting at the same instant:
        the deeper (child) span owns the shared segment."""
        tracer = Tracer()
        uid = "m:3"
        tracer.start_trace(uid, 0.0)
        borrow = tracer.begin(uid, "borrow", 1.0, disc=1)
        tracer.begin(uid, "execute", 1.0, disc=1, parent=borrow)
        tracer.finish(uid, "execute", 2.0, disc=1)
        tracer.finish(uid, "borrow", 3.0, disc=1)
        tracer.finish_trace(uid, 4.0)
        shares = critical_path(TraceSet.from_tracer(tracer), uid)
        assert shares["execute"] == pytest.approx(1.0)
        assert shares["borrow"] == pytest.approx(1.0)

    def test_incomplete_trace_yields_no_path(self):
        tracer = Tracer()
        tracer.start_trace("m:4", 0.0)
        tracer.begin("m:4", "borrow", 1.0, disc=1)
        shares = critical_path(TraceSet.from_tracer(tracer), "m:4")
        assert shares == {}

    def test_span_clipped_to_root_interval(self):
        """A return span force-closed after the root finished must not
        push the attribution past the root's end."""
        tracer = Tracer()
        uid = "m:5"
        tracer.start_trace(uid, 0.0)
        tracer.begin(uid, "return", 1.0, disc=1)
        root = tracer.finish(uid, "command", 2.0)
        # simulate a stage span whose end leaks past the root
        span = next(s for s in tracer.spans if s.name == "return")
        span.finish(5.0)
        shares = critical_path(TraceSet.from_tracer(tracer), uid)
        assert sum(shares.values()) == pytest.approx(2.0)
        assert shares["return"] == pytest.approx(1.0)


class TestStageBreakdownOverManyTraces:
    def test_breakdown_aggregates_across_borrow_return_trees(self):
        tracer = Tracer()
        for i in range(4):
            multi_partition_trace(tracer, f"m:{i}", base=20.0 * i)
        report = stage_breakdown(TraceSet.from_tracer(tracer))
        assert report["traces"] == 4
        assert report["end_to_end"]["mean"] == pytest.approx(10.0)
        critical = {row["stage"]: row for row in report["critical"]}
        assert critical["borrow"]["count"] == 4
        assert critical["borrow"]["mean"] == pytest.approx(2.0)
        # critical-path totals over all stages == total end-to-end time
        total = sum(row["total"] for row in report["critical"])
        assert total == pytest.approx(4 * 10.0)
        # durations report raw (overlapping) spans: borrow is 3.0 long
        durations = {row["stage"]: row for row in report["durations"]}
        assert durations["borrow"]["mean"] == pytest.approx(3.0)
