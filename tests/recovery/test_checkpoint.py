"""Unit tests for the checkpoint/transfer primitives in `repro.recovery`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery import (
    AdaptiveChunker,
    CheckpointRecord,
    assemble_sections,
    flatten_sections,
)


class TestAdaptiveChunker:
    def test_slow_link_shrinks_fast_link_grows(self):
        c = AdaptiveChunker(initial=8, target_rtt=0.05)
        assert c.observe(0.2) == 4  # 4x over target -> clamped to halving
        assert c.observe(0.01) == 8  # 5x under target -> clamped to doubling

    def test_growth_and_shrink_are_clamped_per_step(self):
        c = AdaptiveChunker(initial=10, target_rtt=0.05)
        assert c.observe(1e-9) == 20  # at most doubles
        assert c.observe(1e9) == 10  # at most halves

    def test_bounds_are_respected(self):
        c = AdaptiveChunker(initial=8, min_count=2, max_count=16, target_rtt=0.05)
        for _ in range(10):
            c.observe(10.0)
        assert c.count == 2
        for _ in range(10):
            c.observe(0.001)
        assert c.count == 16

    def test_zero_rtt_treated_as_fast(self):
        c = AdaptiveChunker(initial=4, target_rtt=0.05)
        assert c.observe(0.0) == 8

    def test_shrink_halves_down_to_min(self):
        c = AdaptiveChunker(initial=8, min_count=1)
        assert c.shrink() == 4
        assert c.shrink() == 2
        assert c.shrink() == 1
        assert c.shrink() == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveChunker(initial=0, min_count=1)
        with pytest.raises(ValueError):
            AdaptiveChunker(target_rtt=0.0)

    def test_deterministic_for_same_rtt_sequence(self):
        rtts = [0.08, 0.02, 0.05, 0.4, 0.01]
        a = AdaptiveChunker(initial=8)
        b = AdaptiveChunker(initial=8)
        assert [a.observe(r) for r in rtts] == [b.observe(r) for r in rtts]


class TestFlattenAssemble:
    def test_flatten_orders_by_section_then_key_repr(self):
        sections = {
            "b.section": {"x": 1},
            "a.section": {"k2": 2, "k10": 3},
        }
        items = flatten_sections(sections)
        assert [(s, k) for s, k, _ in items] == [
            ("a.section", "k10"),
            ("a.section", "k2"),
            ("b.section", "x"),
        ]

    def test_round_trip(self):
        sections = {
            "server.store": {"k0": [1, 2], "k1": {"a": 3}},
            "paxos.state": {"delivered_uids": ["u1", "u2"]},
        }
        assert assemble_sections(flatten_sections(sections)) == sections

    def test_assemble_is_order_insensitive(self):
        sections = {"s": {"a": 1, "b": 2}, "t": {"c": 3}}
        items = flatten_sections(sections)
        assert assemble_sections(reversed(items)) == sections

    def test_mixed_key_types_flatten_deterministically(self):
        sections = {"s": {("p0", 3): "x", "plain": "y", 7: "z"}}
        a = flatten_sections(sections)
        b = flatten_sections({"s": dict(reversed(list(sections["s"].items())))})
        assert a == b

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.dictionaries(
                st.one_of(st.text(max_size=6), st.integers(), st.tuples(st.text(max_size=3), st.integers())),
                st.integers(),
                max_size=5,
            ),
            max_size=4,
        )
    )
    @settings(max_examples=100)
    def test_round_trip_property(self, sections):
        # Empty sections vanish in flattening (nothing to transfer), so
        # compare against the record with empties dropped.
        nonempty = {s: d for s, d in sections.items() if d}
        assert assemble_sections(flatten_sections(sections)) == nonempty


class TestCheckpointRecord:
    def test_total_items_counts_all_sections(self):
        record = CheckpointRecord(
            watermark=12, sections={"a": {"x": 1, "y": 2}, "b": {"z": 3}}
        )
        assert record.total_items == 3
        assert record.watermark == 12
